"""The CI benchmark-regression gate: speedup floors, parity flags, skips."""

import importlib.util
import json
from pathlib import Path

import pytest

_TOOL = Path(__file__).resolve().parents[2] / "tools" / "check_bench_regression.py"
spec = importlib.util.spec_from_file_location("check_bench_regression", _TOOL)
gate = importlib.util.module_from_spec(spec)
spec.loader.exec_module(gate)


BASELINE = {
    "bench": "streaming_relink",
    "workload": {"rounds": 6, "per_side": 40},
    "speedup": 15.3,
    "brute_force": {"speedup": 3.1},
    "parity": {"links_identical": True, "max_score_delta": 0.0},
}


def _dirs(tmp_path, fresh):
    base_dir = tmp_path / "base"
    fresh_dir = tmp_path / "fresh"
    base_dir.mkdir(exist_ok=True)
    fresh_dir.mkdir(exist_ok=True)
    (base_dir / "BENCH_x.json").write_text(json.dumps(BASELINE))
    (fresh_dir / "BENCH_x.json").write_text(json.dumps(fresh))
    return base_dir, fresh_dir


class TestCompare:
    def test_identical_passes(self, tmp_path):
        assert gate.compare_dirs(*_dirs(tmp_path, dict(BASELINE)), 0.5) == []

    def test_speedup_regression_fails(self, tmp_path):
        problems = gate.compare_dirs(
            *_dirs(tmp_path, {**BASELINE, "speedup": 1.0}), 0.5
        )
        assert problems and "regressed" in problems[0]

    def test_nested_speedup_checked(self, tmp_path):
        problems = gate.compare_dirs(
            *_dirs(tmp_path, {**BASELINE, "brute_force": {"speedup": 0.5}}),
            0.5,
        )
        assert any("brute_force.speedup" in p for p in problems)

    def test_tolerance_is_a_ratio(self, tmp_path):
        dip = {**BASELINE, "speedup": 8.0}  # > 0.5 * 15.3
        assert gate.compare_dirs(*_dirs(tmp_path, dip), 0.5) == []
        assert gate.compare_dirs(*_dirs(tmp_path, dip), 0.9) != []

    def test_parity_flag_flip_fails(self, tmp_path):
        problems = gate.compare_dirs(
            *_dirs(
                tmp_path,
                {**BASELINE,
                 "parity": {"links_identical": False, "max_score_delta": 0.0}},
            ),
            0.5,
        )
        assert any("went false" in p for p in problems)

    def test_parity_numeric_delta_fails(self, tmp_path):
        problems = gate.compare_dirs(
            *_dirs(
                tmp_path,
                {**BASELINE,
                 "parity": {"links_identical": True, "max_score_delta": 1e-3}},
            ),
            0.5,
        )
        assert any("parity delta" in p for p in problems)

    def test_single_cpu_emission_skips_speedups_not_parity(self, tmp_path):
        fresh = {**BASELINE, "cpus": 1, "speedup": 0.1}
        assert gate.compare_dirs(*_dirs(tmp_path, fresh), 0.5) == []
        fresh["parity"] = {"links_identical": False, "max_score_delta": 0.0}
        assert gate.compare_dirs(*_dirs(tmp_path, fresh), 0.5) != []

    def test_unstamped_baseline_fails_naming_file_and_key(self, tmp_path):
        unstamped = {k: v for k, v in BASELINE.items() if k != "workload"}
        base_dir = tmp_path / "base"
        fresh_dir = tmp_path / "fresh"
        base_dir.mkdir()
        fresh_dir.mkdir()
        (base_dir / "BENCH_x.json").write_text(json.dumps(unstamped))
        (fresh_dir / "BENCH_x.json").write_text(json.dumps(BASELINE))
        problems = gate.compare_dirs(base_dir, fresh_dir, 0.5)
        assert any(
            "BENCH_x.json: baseline emission lacks the 'workload' stamp" in p
            for p in problems
        )

    def test_unstamped_fresh_fails_naming_file_and_key(self, tmp_path):
        unstamped = {k: v for k, v in BASELINE.items() if k != "workload"}
        problems = gate.compare_dirs(*_dirs(tmp_path, unstamped), 0.5)
        assert any(
            "BENCH_x.json: fresh emission lacks the 'workload' stamp" in p
            for p in problems
        )

    def test_two_unstamped_emissions_never_silently_match(self, tmp_path):
        unstamped = {k: v for k, v in BASELINE.items() if k != "workload"}
        base_dir = tmp_path / "base"
        fresh_dir = tmp_path / "fresh"
        base_dir.mkdir()
        fresh_dir.mkdir()
        (base_dir / "BENCH_x.json").write_text(json.dumps(unstamped))
        (fresh_dir / "BENCH_x.json").write_text(
            json.dumps({**unstamped, "speedup": 0.1})
        )
        assert gate.compare_dirs(base_dir, fresh_dir, 0.5) != []

    def test_missing_fresh_or_baseline_is_skip_not_failure(self, tmp_path):
        base_dir = tmp_path / "base"
        fresh_dir = tmp_path / "fresh"
        base_dir.mkdir()
        fresh_dir.mkdir()
        (base_dir / "BENCH_old.json").write_text(json.dumps(BASELINE))
        (fresh_dir / "BENCH_new.json").write_text(json.dumps(BASELINE))
        assert gate.compare_dirs(base_dir, fresh_dir, 0.5) == []

    def test_empty_dirs_flagged(self, tmp_path):
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        problems = gate.compare_dirs(tmp_path / "a", tmp_path / "b", 0.5)
        assert problems


class TestEntryPoints:
    def test_self_test_passes(self):
        assert gate.self_test() == 0

    def test_main_exit_codes(self, tmp_path):
        base_dir, fresh_dir = _dirs(tmp_path, dict(BASELINE))
        argv = ["--baseline", str(base_dir), "--fresh", str(fresh_dir)]
        assert gate.main(argv) == 0
        (fresh_dir / "BENCH_x.json").write_text(
            json.dumps({**BASELINE, "speedup": 0.1})
        )
        assert gate.main(argv) == 1

    def test_committed_baselines_are_self_consistent(self):
        """The checked-in results directory must pass against itself —
        the exact invariant CI starts from."""
        results = _TOOL.parent.parent / "benchmarks" / "results"
        assert gate.compare_dirs(results, results, 1.0) == []


@pytest.mark.parametrize(
    "document,expected",
    [
        ({"speedup": 2.0}, {"speedup": 2.0}),
        ({"a": {"speedup": 1.5}, "speedup": True}, {"a.speedup": 1.5}),
        ({"rows": [{"speedup": 3.0}]}, {"rows[0].speedup": 3.0}),
        ({"speedup_like": 9.0}, {}),
    ],
)
def test_speedup_extraction(document, expected):
    assert gate.speedups(document) == expected


def test_f1_extraction():
    document = {"scenarios": [{"f1": 0.9, "f1_floor": 0.5}], "f1": 0.8}
    assert gate.f1_values(document) == {"scenarios[0].f1": 0.9, "f1": 0.8}
    assert gate.sibling_bounds(document, "_floor") == {"scenarios[0].f1": 0.5}


def test_sibling_bound_extraction():
    document = {
        "serving": {
            "ingest_rate": 500.0,
            "ingest_rate_floor": 100.0,
            "query_p99_s": 0.001,
            "query_p99_s_ceiling": 0.05,
        },
        "_floor": 1.0,  # bare suffix bounds nothing
        "ceiling": 2.0,  # not a bound key at all
    }
    assert gate.sibling_bounds(document, "_floor") == {
        "serving.ingest_rate": 100.0
    }
    assert gate.sibling_bounds(document, "_ceiling") == {
        "serving.query_p99_s": 0.05
    }


class TestF1Gate:
    F1_BASELINE = {
        "bench": "scenarios",
        "workload": {"scale": 1.0},
        "scenarios": [
            {"scenario": "a", "config": "exact", "f1": 0.9, "f1_floor": 0.4},
            {"scenario": "a", "config": "lsh", "f1": 0.7},
        ],
        "parity": {"quality_identical": True, "max_f1_delta": 0.0},
    }

    def _dirs(self, tmp_path, fresh):
        base_dir = tmp_path / "base"
        fresh_dir = tmp_path / "fresh"
        base_dir.mkdir(exist_ok=True)
        fresh_dir.mkdir(exist_ok=True)
        (base_dir / "BENCH_s.json").write_text(json.dumps(self.F1_BASELINE))
        (fresh_dir / "BENCH_s.json").write_text(json.dumps(fresh))
        return base_dir, fresh_dir

    def _fresh(self, **cells):
        fresh = json.loads(json.dumps(self.F1_BASELINE))
        for key, value in cells.items():
            index = 0 if key == "exact" else 1
            fresh["scenarios"][index]["f1"] = value
        return fresh

    def test_identical_emission_passes(self, tmp_path):
        assert gate.compare_dirs(*self._dirs(tmp_path, self._fresh()), 0.5) == []

    def test_floor_violation_fails(self, tmp_path):
        problems = gate.compare_dirs(
            *self._dirs(tmp_path, self._fresh(exact=0.3)), 0.5
        )
        assert any("below its floor" in p for p in problems)

    def test_baseline_f1_regression_fails_even_above_floor(self, tmp_path):
        problems = gate.compare_dirs(
            *self._dirs(tmp_path, self._fresh(exact=0.6)), 0.5
        )
        assert any("regressed" in p for p in problems)

    def test_unfloored_cell_still_compared_to_baseline(self, tmp_path):
        problems = gate.compare_dirs(
            *self._dirs(tmp_path, self._fresh(lsh=0.2)), 0.5
        )
        assert any("scenarios[1].f1" in p for p in problems)

    def test_dip_within_f1_tolerance_passes(self, tmp_path):
        fresh = self._fresh(exact=0.9 - gate.F1_TOLERANCE / 2)
        assert gate.compare_dirs(*self._dirs(tmp_path, fresh), 0.5) == []

    def test_smoke_workload_skips_baseline_comparison_not_floor(self, tmp_path):
        fresh = self._fresh(exact=0.6)
        fresh["workload"] = {"scale": 0.5}
        assert gate.compare_dirs(*self._dirs(tmp_path, fresh), 0.5) == []
        fresh = self._fresh(exact=0.3)
        fresh["workload"] = {"scale": 0.5}
        assert gate.compare_dirs(*self._dirs(tmp_path, fresh), 0.5) != []

    def test_single_cpu_still_compares_f1(self, tmp_path):
        fresh = self._fresh(exact=0.6)
        fresh["cpus"] = 1
        problems = gate.compare_dirs(*self._dirs(tmp_path, fresh), 0.5)
        assert any("regressed" in p for p in problems)

    def test_floor_without_measurement_fails(self, tmp_path):
        fresh = self._fresh()
        del fresh["scenarios"][0]["f1"]
        problems = gate.compare_dirs(*self._dirs(tmp_path, fresh), 0.5)
        assert any("missing" in p for p in problems)

    def test_custom_f1_tolerance_binds(self, tmp_path):
        fresh = self._fresh(exact=0.88)
        assert gate.compare_dirs(*self._dirs(tmp_path, fresh), 0.5) == []
        assert (
            gate.compare_dirs(*self._dirs(tmp_path, fresh), 0.5, 0.01) != []
        )


class TestWorkloadStamp:
    def test_changed_workload_skips_speedups_not_parity(self, tmp_path):
        base = {**BASELINE, "workload": {"rounds": 50}}
        fresh = {**base, "workload": {"rounds": 6}, "speedup": 0.1}
        base_dir = tmp_path / "b"
        fresh_dir = tmp_path / "f"
        base_dir.mkdir()
        fresh_dir.mkdir()
        (base_dir / "BENCH_x.json").write_text(json.dumps(base))
        (fresh_dir / "BENCH_x.json").write_text(json.dumps(fresh))
        assert gate.compare_dirs(base_dir, fresh_dir, 0.5) == []
        fresh["parity"] = {"links_identical": False, "max_score_delta": 0.0}
        (fresh_dir / "BENCH_x.json").write_text(json.dumps(fresh))
        assert gate.compare_dirs(base_dir, fresh_dir, 0.5) != []

"""Unit tests for the ST-Link baseline."""

import pytest

from repro.baselines import StLinkConfig, StLinkLinker
from repro.eval import precision_recall_f1


class TestConfig:
    def test_defaults(self):
        config = StLinkConfig()
        assert config.alibi_tolerance == 3
        assert config.k is None and config.l is None

    def test_validation(self):
        with pytest.raises(ValueError):
            StLinkConfig(window_width_minutes=0)
        with pytest.raises(ValueError):
            StLinkConfig(alibi_tolerance=-1)


class TestLinkage:
    def test_links_dense_pair_accurately(self, cab_pair):
        result = StLinkLinker().link(cab_pair.left, cab_pair.right)
        quality = precision_recall_f1(result.links, cab_pair.ground_truth)
        assert quality.precision >= 0.7
        assert quality.recall >= 0.5

    def test_links_are_one_to_one(self, cab_pair):
        result = StLinkLinker().link(cab_pair.left, cab_pair.right)
        assert len(set(result.links.values())) == len(result.links)

    def test_auto_k_l_detected(self, cab_pair):
        result = StLinkLinker().link(cab_pair.left, cab_pair.right)
        assert result.k >= 1
        assert result.l >= 1

    def test_explicit_k_l_respected(self, cab_pair):
        result = StLinkLinker(StLinkConfig(k=5, l=2)).link(
            cab_pair.left, cab_pair.right
        )
        assert result.k == 5 and result.l == 2
        for pair in result.links.items():
            assert result.scores[pair] >= 5

    def test_huge_k_yields_no_links(self, cab_pair):
        result = StLinkLinker(StLinkConfig(k=10**9, l=1)).link(
            cab_pair.left, cab_pair.right
        )
        assert result.links == {}

    def test_zero_alibi_tolerance_is_stricter(self, cab_pair):
        lax = StLinkLinker(StLinkConfig(alibi_tolerance=10**6)).link(
            cab_pair.left, cab_pair.right
        )
        strict = StLinkLinker(StLinkConfig(alibi_tolerance=0)).link(
            cab_pair.left, cab_pair.right
        )
        assert len(strict.links) <= len(lax.links) + len(strict.ambiguous_entities)

    def test_scores_rank_true_pairs_high(self, cab_pair):
        result = StLinkLinker().link(cab_pair.left, cab_pair.right)
        truth_scores = [
            result.scores.get(pair, 0.0) for pair in cab_pair.ground_truth.items()
        ]
        all_scores = list(result.scores.values())
        if truth_scores and all_scores:
            import numpy as np

            assert np.mean(truth_scores) > np.mean(all_scores)

    def test_record_comparisons_counted(self, cab_pair):
        result = StLinkLinker().link(cab_pair.left, cab_pair.right)
        assert result.record_comparisons > 0
        assert result.runtime_seconds > 0

    def test_low_evidence_no_better_than_slim(self, sm_world):
        """The paper's Fig. 11b: at low record counts ST-Link cannot beat
        SLIM — its k-co-occurrence requirement starves before SLIM's
        aggregated similarity does."""
        from repro.core.slim import SlimConfig
        from repro.data import sample_linkage_pair
        from repro.eval import run_slim

        sparse = sample_linkage_pair(
            sm_world, 0.5, 0.25, rng=31, min_records=3
        )
        stlink = StLinkLinker().link(sparse.left, sparse.right)
        stlink_f1 = precision_recall_f1(stlink.links, sparse.ground_truth).f1
        slim_f1 = run_slim(sparse, SlimConfig()).f1
        assert stlink_f1 <= slim_f1 + 0.1

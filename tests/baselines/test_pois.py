"""Unit tests for the POIS baseline."""

import pytest

from repro.baselines import PoisConfig, PoisLinker
from repro.eval import precision_recall_f1


class TestConfig:
    def test_defaults(self):
        config = PoisConfig()
        assert config.window_width_minutes == 15.0
        assert config.spatial_level == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            PoisConfig(window_width_minutes=0)
        with pytest.raises(ValueError):
            PoisConfig(spatial_level=31)


class TestLinkage:
    def test_links_dense_pair(self, cab_pair):
        result = PoisLinker().link(cab_pair.left, cab_pair.right)
        quality = precision_recall_f1(result.links, cab_pair.ground_truth)
        assert quality.recall >= 0.6

    def test_links_one_to_one(self, cab_pair):
        result = PoisLinker().link(cab_pair.left, cab_pair.right)
        assert len(set(result.links.values())) == len(result.links)

    def test_no_stop_threshold_hurts_precision_vs_slim(self, cab_pair):
        """POIS (like the other prior work) links a full matching; without
        SLIM's stop threshold, non-overlapping entities become false links
        at intersection ratio 0.5."""
        from repro.core.slim import SlimConfig
        from repro.eval import run_slim

        pois = PoisLinker().link(cab_pair.left, cab_pair.right)
        pois_quality = precision_recall_f1(pois.links, cab_pair.ground_truth)
        slim = run_slim(cab_pair, SlimConfig())
        assert slim.quality.precision >= pois_quality.precision

    def test_rarity_weighting_ranks_true_pairs(self, cab_pair):
        result = PoisLinker().link(cab_pair.left, cab_pair.right)
        import numpy as np

        truth_scores = [
            result.scores.get(pair, 0.0) for pair in cab_pair.ground_truth.items()
        ]
        if truth_scores and result.scores:
            assert np.mean(truth_scores) > np.mean(list(result.scores.values()))

    def test_scores_only_for_cooccurring_pairs(self, sm_pair):
        result = PoisLinker().link(sm_pair.left, sm_pair.right)
        assert len(result.scores) <= (
            sm_pair.left.num_entities * sm_pair.right.num_entities
        )
        assert all(value > 0 for value in result.scores.values())

    def test_comparisons_counted(self, cab_pair):
        result = PoisLinker().link(cab_pair.left, cab_pair.right)
        assert result.record_comparisons > 0
        assert result.runtime_seconds > 0

    def test_min_score_filters(self, cab_pair):
        loose = PoisLinker(PoisConfig(min_score=0.0)).link(
            cab_pair.left, cab_pair.right
        )
        strict = PoisLinker(PoisConfig(min_score=10**9)).link(
            cab_pair.left, cab_pair.right
        )
        assert len(strict.links) <= len(loose.links)
        assert strict.links == {}

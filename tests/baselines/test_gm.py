"""Unit tests for the GM baseline."""

import numpy as np
import pytest

from repro.baselines import GmConfig, GmLinker
from repro.baselines.gm import EntityMobilityModel
from repro.data import LocationDataset, sample_linkage_pair
from repro.data.synth import default_cab_world
from repro.eval import precision_recall_f1
from repro.temporal import Windowing


@pytest.fixture(scope="module")
def gm_pair():
    world = default_cab_world(
        num_taxis=12, duration_days=0.5, sample_period_seconds=600, seed=3
    ).generate()
    return sample_linkage_pair(world, 0.5, 0.5, rng=3)


class TestConfig:
    def test_defaults(self):
        config = GmConfig()
        assert config.max_window_gap == 4
        assert 0 < config.temporal_decay <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            GmConfig(sigma_meters=0)
        with pytest.raises(ValueError):
            GmConfig(temporal_decay=0.0)
        with pytest.raises(ValueError):
            GmConfig(max_window_gap=-1)


class TestEntityModel:
    def _model(self, rows, config=None):
        array = np.asarray(rows, dtype=np.float64)
        return EntityMobilityModel(
            "e",
            array[:, 0],
            array[:, 1],
            array[:, 2],
            Windowing(0.0, 900.0),
            config or GmConfig(),
        )

    def test_gmm_centers_on_data(self):
        rows = [(900.0 * k, 37.77 + 0.0001 * (k % 2), -122.42) for k in range(20)]
        model = self._model(rows)
        assert model.gmm_weights.sum() == pytest.approx(1.0)
        # All components sit near the data centroid (within ~200 m).
        for x, y in model.gmm_means:
            assert abs(x) < 200 and abs(y) < 200

    def test_markov_transitions_learned(self):
        # Alternating between two distant cells -> transitions exist.
        rows = []
        for k in range(10):
            if k % 2 == 0:
                rows.append((900.0 * k, 37.77, -122.42))
            else:
                rows.append((900.0 * k, 37.90, -122.10))
        model = self._model(rows)
        assert model.transitions

    def test_estimate_location_for_missing_window(self):
        rows = [(0.0, 37.77, -122.42), (900.0, 37.78, -122.41)]
        model = self._model(rows)
        estimate = model.estimate_location(50)
        assert estimate is not None
        lat, lng = estimate
        assert 37.0 < lat < 38.5
        assert -123.0 < lng < -121.5

    def test_windows_sorted(self):
        rows = [(1800.0, 37.0, -122.0), (0.0, 37.1, -122.1)]
        model = self._model(rows)
        assert model.windows == sorted(model.windows)


class TestLinkage:
    def test_accuracy_on_dense_data(self, gm_pair):
        result = GmLinker().link(gm_pair.left, gm_pair.right)
        quality = precision_recall_f1(result.links, gm_pair.ground_truth)
        assert quality.precision >= 0.6
        assert quality.recall >= 0.5

    def test_links_one_to_one(self, gm_pair):
        result = GmLinker().link(gm_pair.left, gm_pair.right)
        assert len(set(result.links.values())) == len(result.links)

    def test_scores_cover_all_pairs(self, gm_pair):
        """GM has no blocking: every cross pair receives a score."""
        result = GmLinker().link(gm_pair.left, gm_pair.right)
        assert len(result.scores) == (
            gm_pair.left.num_entities * gm_pair.right.num_entities
        )

    def test_record_comparisons_scale_with_records(self, gm_pair):
        result = GmLinker().link(gm_pair.left, gm_pair.right)
        assert result.record_comparisons > gm_pair.left.num_records

    def test_cross_window_pairs_award(self):
        """GM awards record pairs from different windows (decayed), unlike
        SLIM's same-window-only pairing."""
        base = 1_000_000.0
        left = LocationDataset.from_arrays(
            ["u"],
            {"u": (np.array([base]), np.array([37.77]), np.array([-122.42]))},
        )
        # Right record one window later at the same place.
        right = LocationDataset.from_arrays(
            ["v"],
            {"v": (np.array([base + 1000.0]), np.array([37.77]), np.array([-122.42]))},
        )
        linker = GmLinker(GmConfig(max_window_gap=4))
        result = linker.link(left, right)
        assert result.scores[("u", "v")] > 0.0

    def test_gap_zero_ignores_cross_window(self):
        base = 1_000_000.0
        left = LocationDataset.from_arrays(
            ["u"],
            {"u": (np.array([base]), np.array([37.77]), np.array([-122.42]))},
        )
        right = LocationDataset.from_arrays(
            ["v"],
            {"v": (np.array([base + 1000.0]), np.array([37.77]), np.array([-122.42]))},
        )
        linker = GmLinker(GmConfig(max_window_gap=0, missing_weight=0.0))
        result = linker.link(left, right)
        assert result.scores[("u", "v")] == 0.0

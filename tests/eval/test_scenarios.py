"""Scenario zoo: registry contents, determinism, streaming replay and the
scenario-matrix harness (including executor bit-identity, which the CI
scenario gate relies on)."""

import numpy as np
import pytest

from repro.data.sampling import LinkagePair
from repro.eval import run_scenarios, scenario_table
from repro.pipeline.config import LinkageConfig
from repro.scenarios import (
    Scenario,
    get_scenario,
    register_scenario,
    scenario_names,
    scenario_pair,
    scenarios,
)

#: Scenarios ISSUE 7 requires; the registry may grow beyond these.
REQUIRED = {
    "baseline_cab",
    "checkin_baseline",
    "gps_jitter_burst",
    "device_swap",
    "population_drift",
    "bursty_arrival",
    "dropout_gaps",
    "duplicate_ingestion",
}


def dataset_bytes(dataset):
    chunks = []
    for entity in dataset.entities:
        timestamps, lats, lngs = dataset.columns(entity)
        chunks.append(entity.encode())
        chunks.extend(a.tobytes() for a in (timestamps, lats, lngs))
    return b"".join(chunks)


def pair_bytes(pair):
    truth = repr(sorted(pair.ground_truth.items())).encode()
    return dataset_bytes(pair.left) + dataset_bytes(pair.right) + truth


class TestRegistry:
    def test_at_least_six_scenarios_registered(self):
        assert len(scenario_names()) >= 6

    def test_required_scenarios_present(self):
        assert REQUIRED <= set(scenario_names())

    def test_unknown_scenario_names_alternatives(self):
        with pytest.raises(KeyError, match="baseline_cab"):
            get_scenario("no_such_scenario")

    def test_get_returns_scenario_with_description(self):
        for name in scenario_names():
            scenario = get_scenario(name)
            assert isinstance(scenario, Scenario)
            assert scenario.name == name
            assert scenario.description

    def test_register_and_unregister_custom_scenario(self):
        @register_scenario("custom_test_scenario", description="one-off")
        def _build(seed, scale):
            return scenario_pair("baseline_cab", seed=seed, scale=scale)

        try:
            assert "custom_test_scenario" in scenario_names()
            pair = scenario_pair("custom_test_scenario", seed=3, scale=0.5)
            assert pair.num_common > 0
        finally:
            scenarios.unregister("custom_test_scenario")
        assert "custom_test_scenario" not in scenario_names()


class TestDeterminismAndGroundTruth:
    @pytest.mark.parametrize("name", sorted(REQUIRED))
    def test_same_seed_byte_identical(self, name):
        a = scenario_pair(name, seed=11, scale=0.5)
        b = scenario_pair(name, seed=11, scale=0.5)
        assert pair_bytes(a) == pair_bytes(b)

    @pytest.mark.parametrize("name", ["baseline_cab", "gps_jitter_burst"])
    def test_different_seeds_differ(self, name):
        a = scenario_pair(name, seed=1, scale=0.5)
        b = scenario_pair(name, seed=2, scale=0.5)
        assert pair_bytes(a) != pair_bytes(b)

    @pytest.mark.parametrize("name", sorted(REQUIRED))
    def test_ground_truth_is_held_out_and_valid(self, name):
        pair = scenario_pair(name, seed=7, scale=0.5)
        assert isinstance(pair, LinkagePair)
        assert pair.num_common > 0
        left_ids = set(pair.left.entities)
        right_ids = set(pair.right.entities)
        for left, right in pair.ground_truth.items():
            assert left in left_ids
            assert right in right_ids

    def test_scale_grows_the_world(self):
        small = scenario_pair("baseline_cab", seed=7, scale=0.5)
        large = scenario_pair("baseline_cab", seed=7, scale=1.5)
        assert len(large.left.entities) > len(small.left.entities)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError, match="scale"):
            get_scenario("baseline_cab").pair(scale=0.0)


class TestStream:
    def test_rounds_partition_all_records_exactly_once(self):
        scenario = get_scenario("baseline_cab")
        pair = scenario.pair(seed=7, scale=0.5)
        rounds = scenario.stream(rounds=4, seed=7, scale=0.5)
        assert len(rounds) == 4
        for side in ("left", "right"):
            replayed = sorted(
                (r.entity_id, r.timestamp, r.lat, r.lng)
                for cell in rounds
                for r in getattr(cell, side)
            )
            original = sorted(
                (r.entity_id, r.timestamp, r.lat, r.lng)
                for r in getattr(pair, side).records()
            )
            assert replayed == original

    def test_rounds_are_time_ordered_and_sliced(self):
        rounds = get_scenario("bursty_arrival").stream(rounds=3, seed=7, scale=0.5)
        previous_max = -np.inf
        for cell in rounds:
            stamps = [r.timestamp for r in cell.left + cell.right]
            if not stamps:
                continue
            for side in (cell.left, cell.right):
                times = [r.timestamp for r in side]
                assert times == sorted(times)
            assert min(stamps) >= previous_max - 1e-9
            previous_max = max(stamps)

    def test_stream_needs_at_least_one_round(self):
        with pytest.raises(ValueError, match="round"):
            get_scenario("baseline_cab").stream(rounds=0)


class TestRunScenarios:
    NAMES = ["baseline_cab", "gps_jitter_burst"]
    CONFIGS = {"exact": LinkageConfig()}

    @staticmethod
    def quality_rows(cells):
        rows = []
        for cell in cells:
            row = cell.row()
            row.pop("runtime_s")
            rows.append(row)
        return rows

    def test_serial_default_runs_every_cell_in_order(self):
        cells = run_scenarios(self.NAMES, self.CONFIGS, seed=7, scale=0.5)
        assert [(c.scenario, c.config_label) for c in cells] == [
            ("baseline_cab", "exact"),
            ("gps_jitter_burst", "exact"),
        ]
        for cell in cells:
            assert 0.0 <= cell.measures.f1 <= 1.0

    def test_defaults_cover_whole_registry(self):
        cells = run_scenarios(scale=0.5)
        assert [c.scenario for c in cells] == scenario_names()
        assert {c.config_label for c in cells} == {"default"}

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_executor_results_bit_identical_to_serial(self, backend):
        serial = run_scenarios(self.NAMES, self.CONFIGS, seed=7, scale=0.5)
        parallel = run_scenarios(
            self.NAMES, self.CONFIGS, seed=7, scale=0.5, executor=backend
        )
        assert self.quality_rows(parallel) == self.quality_rows(serial)

    def test_multiple_configs_form_a_matrix(self):
        from repro.lsh.index import LshConfig

        configs = {
            "exact": LinkageConfig(),
            "lsh": LinkageConfig(lsh=LshConfig()),
        }
        cells = run_scenarios(["baseline_cab"], configs, seed=7, scale=0.5)
        assert [(c.scenario, c.config_label) for c in cells] == [
            ("baseline_cab", "exact"),
            ("baseline_cab", "lsh"),
        ]


class TestScenarioTable:
    def test_renders_cells_with_quality_columns(self):
        cells = run_scenarios(
            ["baseline_cab"], {"exact": LinkageConfig()}, seed=7, scale=0.5
        )
        text = scenario_table(cells, title="matrix")
        assert "matrix" in text
        assert "scenario" in text and "f1" in text
        assert "baseline_cab" in text

    def test_accepts_plain_dict_rows(self):
        text = scenario_table([{"scenario": "x", "config": "c", "f1": 0.5}])
        assert "0.500" in text

    def test_empty_matrix_renders(self):
        assert "(no rows)" in scenario_table([])

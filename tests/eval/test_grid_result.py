"""Unit tests for the GridResult sweep accumulator."""

from repro.eval.harness import GridResult


class TestGridResult:
    def test_add_merges_point_and_measures(self):
        result = GridResult(axes=("level", "width"))
        result.add({"level": 12, "width": 15}, {"f1": 0.9})
        assert result.rows == [{"level": 12, "width": 15, "f1": 0.9}]

    def test_series_extraction_preserves_order(self):
        result = GridResult(axes=("x",))
        for k in range(5):
            result.add({"x": k}, {"value": k * k})
        assert result.series("value") == [0, 1, 4, 9, 16]
        assert result.series("x") == [0, 1, 2, 3, 4]

    def test_measures_do_not_clobber_each_other(self):
        result = GridResult(axes=("x",))
        result.add({"x": 1}, {"a": 1.0, "b": 2.0})
        result.add({"x": 2}, {"a": 3.0, "b": 4.0})
        assert result.series("a") == [1.0, 3.0]
        assert result.series("b") == [2.0, 4.0]

"""Seeded metamorphic properties of the linkage pipeline (no hypothesis
dependency — the perturbations are explicit and deterministic).

Three families:

* **side-swap symmetry** — linking (right, left) must produce the inverse
  link mapping and symmetric scores: nothing in the scorer may privilege
  one side;
* **order invariance** — a dataset rebuilt from its records in shuffled
  order is the *same* dataset (columnar storage sorts by time), so links
  and scores are bit-identical;
* **monotone degradation** — more GPS jitter can only hurt: F1 over an
  increasing amplitude sweep is non-increasing, and zero amplitude is a
  no-op.
"""

import numpy as np
import pytest

from repro.data import LocationDataset
from repro.eval.metrics import precision_recall_f1
from repro.pipeline import LinkagePipeline
from repro.pipeline.config import LinkageConfig
from repro.scenarios import gps_jitter_pair, jitter_bursts, scenario_pair

SCORE_EPSILON = 1e-9


@pytest.fixture(scope="module")
def pair():
    return scenario_pair("baseline_cab", seed=7, scale=0.5)


@pytest.fixture(scope="module")
def forward(pair):
    return LinkagePipeline(LinkageConfig()).run(pair.left, pair.right)


def edge_scores(report):
    return {(edge.left, edge.right): edge.weight for edge in report.edges}


class TestSideSwapSymmetry:
    @pytest.fixture(scope="class")
    def reverse(self, pair):
        return LinkagePipeline(LinkageConfig()).run(pair.right, pair.left)

    def test_links_are_the_inverse_mapping(self, forward, reverse):
        assert {v: k for k, v in reverse.links.items()} == dict(forward.links)

    def test_scores_are_symmetric(self, forward, reverse):
        fwd = edge_scores(forward)
        rev = {(r, l): w for (l, r), w in edge_scores(reverse).items()}
        assert fwd.keys() == rev.keys()
        for key, weight in fwd.items():
            assert abs(weight - rev[key]) <= SCORE_EPSILON

    def test_threshold_is_symmetric(self, forward, reverse):
        assert forward.threshold.threshold == pytest.approx(
            reverse.threshold.threshold, abs=SCORE_EPSILON
        )


class TestOrderInvariance:
    @staticmethod
    def shuffled(dataset, seed):
        records = list(dataset.records())
        np.random.default_rng(seed).shuffle(records)
        return LocationDataset.from_records(records, dataset.name)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_shuffled_left_gives_identical_run(self, pair, forward, seed):
        report = LinkagePipeline(LinkageConfig()).run(
            self.shuffled(pair.left, seed), pair.right
        )
        assert dict(report.links) == dict(forward.links)
        assert edge_scores(report) == edge_scores(forward)

    def test_shuffling_both_sides_gives_identical_run(self, pair, forward):
        report = LinkagePipeline(LinkageConfig()).run(
            self.shuffled(pair.left, 2), self.shuffled(pair.right, 3)
        )
        assert dict(report.links) == dict(forward.links)
        assert edge_scores(report) == edge_scores(forward)

    def test_shuffled_rebuild_is_byte_identical(self, pair):
        rebuilt = self.shuffled(pair.left, 4)
        for entity in pair.left.entities:
            for original, copy in zip(
                pair.left.columns(entity), rebuilt.columns(entity)
            ):
                assert np.array_equal(original, copy)


class TestMonotoneJitterDegradation:
    AMPLITUDES = (0.0, 150.0, 600.0, 2400.0, 9600.0)
    #: Slack for single-link granularity at this world size; a real
    #: regression (jitter helping) would exceed it.
    SLACK = 0.05

    @pytest.fixture(scope="class")
    def sweep(self):
        f1s = []
        for amplitude in self.AMPLITUDES:
            pair = gps_jitter_pair(seed=7, scale=1.0, amplitude_meters=amplitude)
            report = LinkagePipeline(LinkageConfig()).run(pair.left, pair.right)
            f1s.append(precision_recall_f1(report.links, pair.ground_truth).f1)
        return f1s

    def test_f1_never_exceeds_the_clean_run(self, sweep):
        for f1 in sweep[1:]:
            assert f1 <= sweep[0] + SCORE_EPSILON

    def test_f1_is_monotone_non_increasing(self, sweep):
        for before, after in zip(sweep, sweep[1:]):
            assert after <= before + self.SLACK

    def test_extreme_jitter_strictly_hurts(self, sweep):
        assert sweep[-1] < sweep[0]

    def test_zero_amplitude_is_identity(self):
        base = scenario_pair("baseline_cab", seed=7, scale=0.5)
        rng = np.random.default_rng(99)
        unjittered = jitter_bursts(base.left, rng, amplitude_meters=0.0)
        for entity in base.left.entities:
            for original, copy in zip(
                base.left.columns(entity), unjittered.columns(entity)
            ):
                assert np.array_equal(original, copy)

"""Unit tests for evaluation metrics."""

import pytest

from repro.eval import (
    hit_precision_at_k,
    precision_recall_f1,
    relative_f1,
    speedup,
)


class TestPrecisionRecallF1:
    def test_perfect(self):
        truth = {"a": "x", "b": "y"}
        quality = precision_recall_f1({"a": "x", "b": "y"}, truth)
        assert quality.precision == 1.0
        assert quality.recall == 1.0
        assert quality.f1 == 1.0

    def test_half_right(self):
        truth = {"a": "x", "b": "y"}
        quality = precision_recall_f1({"a": "x", "b": "z"}, truth)
        assert quality.precision == 0.5
        assert quality.recall == 0.5
        assert quality.f1 == 0.5

    def test_missing_links_hit_recall(self):
        truth = {"a": "x", "b": "y", "c": "z"}
        quality = precision_recall_f1({"a": "x"}, truth)
        assert quality.precision == 1.0
        assert quality.recall == pytest.approx(1 / 3)

    def test_spurious_links_hit_precision(self):
        truth = {"a": "x"}
        quality = precision_recall_f1({"a": "x", "q": "w"}, truth)
        assert quality.precision == 0.5
        assert quality.recall == 1.0

    def test_empty_linkage(self):
        quality = precision_recall_f1({}, {"a": "x"})
        assert quality.precision == 1.0  # vacuous
        assert quality.recall == 0.0
        assert quality.f1 == 0.0

    def test_empty_truth(self):
        quality = precision_recall_f1({"a": "x"}, {})
        assert quality.recall == 1.0
        assert quality.precision == 0.0

    def test_counts(self):
        truth = {"a": "x", "b": "y", "c": "z"}
        quality = precision_recall_f1({"a": "x", "b": "w"}, truth)
        assert quality.true_positives == 1
        assert quality.false_positives == 1
        assert quality.false_negatives == 2


class TestHitPrecision:
    def test_rank_zero_scores_one(self):
        scores = {("a", "x"): 10.0, ("a", "y"): 1.0}
        assert hit_precision_at_k(scores, {"a": "x"}, k=40) == 1.0

    def test_rank_discount(self):
        scores = {("a", "x"): 1.0, ("a", "y"): 10.0, ("a", "z"): 5.0}
        # True partner x is ranked 2 (0-based) of 3.
        assert hit_precision_at_k(scores, {"a": "x"}, k=4) == pytest.approx(0.5)

    def test_beyond_k_scores_zero(self):
        scores = {("a", f"r{k}"): float(100 - k) for k in range(50)}
        truth = {"a": "r49"}
        assert hit_precision_at_k(scores, truth, k=10) == 0.0

    def test_averaged_over_truth_entities(self):
        scores = {
            ("a", "x"): 10.0,
            ("a", "y"): 1.0,
            ("b", "x"): 9.0,
            ("b", "y"): 1.0,
        }
        truth = {"a": "x", "b": "y"}  # a perfect, b at rank 1
        expected = (1.0 + (1.0 - 1 / 40)) / 2
        assert hit_precision_at_k(scores, truth, k=40) == pytest.approx(expected)

    def test_unscored_entity_contributes_zero(self):
        scores = {("a", "x"): 1.0}
        truth = {"a": "x", "missing": "y"}
        assert hit_precision_at_k(scores, truth, k=40) == pytest.approx(0.5)

    def test_empty_truth(self):
        assert hit_precision_at_k({}, {}, k=40) == 0.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            hit_precision_at_k({}, {}, k=0)

    def test_deterministic_tie_break(self):
        scores = {("a", "x"): 5.0, ("a", "y"): 5.0}
        first = hit_precision_at_k(scores, {"a": "x"}, k=40)
        second = hit_precision_at_k(dict(reversed(list(scores.items()))), {"a": "x"}, k=40)
        assert first == second


class TestRatios:
    def test_relative_f1(self):
        assert relative_f1(0.9, 1.0) == pytest.approx(0.9)
        assert relative_f1(0.0, 0.0) == 1.0
        assert relative_f1(0.5, 0.0) == float("inf")

    def test_speedup(self):
        assert speedup(1000, 10) == 100.0
        assert speedup(0, 0) == 1.0
        assert speedup(10, 0) == float("inf")

"""Unit tests for report formatting."""

from repro.eval import format_table, write_report


class TestFormatTable:
    def test_basic_alignment(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.123456}]
        text = format_table(rows, precision=3)
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert "a" in lines[0] and "b" in lines[0]
        assert "0.123" in text

    def test_title(self):
        text = format_table([{"x": 1}], title="Figure 4a")
        assert text.startswith("Figure 4a")

    def test_column_selection_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.splitlines()[0]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_missing_cell_is_blank(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 9}], columns=["a", "b"])
        assert "9" in text

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])

    def test_nan_rendering(self):
        text = format_table([{"v": float("nan")}])
        assert "nan" in text

    def test_large_numbers_scientific(self):
        text = format_table([{"v": 1.23e9}])
        assert "e+09" in text


class TestWriteReport:
    def test_writes_and_echoes(self, tmp_path, capsys):
        path = tmp_path / "sub" / "report.txt"
        write_report("hello", path)
        assert path.read_text() == "hello\n"
        assert "hello" in capsys.readouterr().out

    def test_no_echo(self, tmp_path, capsys):
        path = tmp_path / "quiet.txt"
        write_report("silent", path, echo=False)
        assert capsys.readouterr().out == ""
        assert path.read_text() == "silent\n"

"""Unit tests for report formatting."""

from repro.eval import format_table, write_report


class TestFormatTable:
    def test_basic_alignment(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.123456}]
        text = format_table(rows, precision=3)
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert "a" in lines[0] and "b" in lines[0]
        assert "0.123" in text

    def test_title(self):
        text = format_table([{"x": 1}], title="Figure 4a")
        assert text.startswith("Figure 4a")

    def test_column_selection_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.splitlines()[0]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_missing_cell_is_blank(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 9}], columns=["a", "b"])
        assert "9" in text

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])

    def test_nan_rendering(self):
        text = format_table([{"v": float("nan")}])
        assert "nan" in text

    def test_large_numbers_scientific(self):
        text = format_table([{"v": 1.23e9}])
        assert "e+09" in text


class TestWriteReport:
    def test_writes_and_echoes(self, tmp_path, capsys):
        path = tmp_path / "sub" / "report.txt"
        write_report("hello", path)
        assert path.read_text() == "hello\n"
        assert "hello" in capsys.readouterr().out

    def test_no_echo(self, tmp_path, capsys):
        path = tmp_path / "quiet.txt"
        write_report("silent", path, echo=False)
        assert capsys.readouterr().out == ""
        assert path.read_text() == "silent\n"


class TestRetentionTable:
    def test_renders_memory_stats_snapshots(self):
        from repro.core.streaming import StreamingLinker
        from repro.data import Record
        from repro.eval import retention_table
        from repro.pipeline import LinkageConfig

        linker = StreamingLinker(
            origin=0.0,
            config=LinkageConfig(
                retention="max_entities", retention_window=2,
                threshold="none",
            ),
        )
        snapshots = []
        for round_idx in range(3):
            for side in ("left", "right"):
                jitter = 0.0 if side == "left" else 1e-4
                linker.observe(side, [
                    Record(f"e{round_idx}_{i}", 37.7 + 0.01 * i + jitter,
                           -122.4 + jitter, round_idx * 3600.0 + 60.0 * i)
                    for i in range(3)
                ])
            start_entities = linker.num_left_entities
            linker.relink()
            row = dict(linker.memory_stats())
            row["relink"] = round_idx
            row["evicted_left"] = linker.last_relink.evicted_left
            snapshots.append(row)
            assert linker.num_left_entities <= max(2, start_entities)
        text = retention_table(snapshots, title="retention trajectory")
        lines = text.splitlines()
        assert lines[0] == "retention trajectory"
        assert "left_entities" in lines[1] and "evicted_left" in lines[1]
        assert len(lines) == 2 + 1 + 3  # title, header, rule, 3 rows
        # The bound shows up in the rendered numbers: entities plateau at 2.
        assert lines[-1].split()[1] == "2"

    def test_columns_absent_everywhere_are_omitted(self):
        from repro.eval import retention_table

        text = retention_table([
            {"relink": 0, "left_entities": 5},
            {"relink": 1, "left_entities": 4},
        ])
        assert "lsh_entities" not in text
        assert "relink_s" not in text

"""Unit tests for the experiment harness."""

from repro.core.similarity import SimilarityConfig
from repro.core.slim import SlimConfig
from repro.eval import grid, hit_precision_at_k, run_slim, score_all_pairs


class TestRunSlim:
    def test_returns_quality_and_result(self, cab_pair):
        measures = run_slim(cab_pair, SlimConfig())
        assert 0.0 <= measures.f1 <= 1.0
        assert measures.bin_comparisons > 0
        assert measures.runtime_seconds > 0

    def test_row_is_flat(self, cab_pair):
        measures = run_slim(cab_pair, SlimConfig())
        row = measures.row()
        for key in ("precision", "recall", "f1", "bin_comparisons", "runtime_s"):
            assert key in row

    def test_default_config(self, cab_pair):
        assert run_slim(cab_pair).f1 >= 0.0


class TestScoreAllPairs:
    def test_full_matrix(self, cab_pair):
        scores, engine = score_all_pairs(cab_pair)
        expected = cab_pair.left.num_entities * cab_pair.right.num_entities
        assert len(scores) == expected
        assert engine.stats.pairs_scored == expected

    def test_hit_precision_near_one_on_dense_data(self, cab_pair):
        scores, _ = score_all_pairs(cab_pair)
        assert hit_precision_at_k(scores, cab_pair.ground_truth, 40) > 0.8

    def test_custom_similarity_config(self, cab_pair):
        scores, engine = score_all_pairs(
            cab_pair, SimilarityConfig(spatial_level=10)
        )
        assert engine.config.spatial_level == 10
        assert scores


class TestGrid:
    def test_cartesian_product(self):
        names, points = grid({"a": [1, 2], "b": [10, 20, 30]})
        assert names == ("a", "b")
        assert len(points) == 6
        assert {"a": 1, "b": 10} in points

    def test_single_axis(self):
        _, points = grid({"x": [5]})
        assert points == [{"x": 5}]

    def test_empty_axes(self):
        names, points = grid({})
        assert names == ()
        assert points == [{}]

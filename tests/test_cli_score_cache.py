"""`--score-cache` failure modes: every broken cache file must degrade to
cold scoring with a warning — never an exception, never garbage scores.

`ScoreCache.load()` itself raises `ValueError` on truncated / foreign /
corrupt files (pinned in ``tests/core/test_score_cache_persist.py``); the
contract here is that the CLI *catches* that, and that a cache whose
fingerprints no longer match the data (the corpus moved on) silently
scores cold instead of serving stale totals.
"""

import pytest

from repro.cli import main
from repro.core.score_cache import ScoreCache, _PERSIST_MAGIC
from repro.data import sample_linkage_pair, save_csv


@pytest.fixture(scope="module")
def csv_pair(tmp_path_factory, cab_world):
    tmp_path = tmp_path_factory.mktemp("cli-score-cache")
    world = cab_world.subset(cab_world.entities[:10])
    pair = sample_linkage_pair(world, 0.5, 0.5, rng=5)
    left = tmp_path / "left.csv"
    right = tmp_path / "right.csv"
    save_csv(pair.left, left)
    save_csv(pair.right, right)
    return str(left), str(right), tmp_path


def _run(left, right, cache_path, capsys):
    code = main([left, right, "--score-cache", str(cache_path)])
    captured = capsys.readouterr()
    assert code == 0
    return captured


class TestCleanFallback:
    def test_truncated_cache_falls_back_to_cold(self, csv_pair, capsys):
        left, right, tmp = csv_pair
        cache_path = tmp / "truncated.bin"
        _run(left, right, cache_path, capsys)  # writes a valid cache
        data = cache_path.read_bytes()
        cache_path.write_bytes(data[: len(data) // 2])

        captured = _run(left, right, cache_path, capsys)
        assert "warning: ignoring score cache" in captured.err
        assert "0 hits" in captured.err  # cold scoring, not stale hits
        # The broken file was replaced by a fresh valid one.
        assert ScoreCache.load(cache_path) is not None

    def test_wrong_magic_falls_back_to_cold(self, csv_pair, capsys):
        left, right, tmp = csv_pair
        cache_path = tmp / "foreign.bin"
        cache_path.write_bytes(b"definitely not a score cache file")

        captured = _run(left, right, cache_path, capsys)
        assert "warning: ignoring score cache" in captured.err
        assert "bad magic" in captured.err
        assert len(ScoreCache.load(cache_path)) > 0

    def test_corrupt_payload_falls_back_to_cold(self, csv_pair, capsys):
        left, right, tmp = csv_pair
        cache_path = tmp / "corrupt.bin"
        _run(left, right, cache_path, capsys)
        data = bytearray(cache_path.read_bytes())
        data[len(_PERSIST_MAGIC) + 32 + 3] ^= 0xFF  # flip a payload byte
        cache_path.write_bytes(bytes(data))

        captured = _run(left, right, cache_path, capsys)
        assert "warning: ignoring score cache" in captured.err
        assert "fingerprint mismatch" in captured.err

    def test_warm_and_cold_links_identical(self, csv_pair, capsys):
        left, right, tmp = csv_pair
        cache_path = tmp / "warm.bin"
        cold = _run(left, right, cache_path, capsys)
        warm = _run(left, right, cache_path, capsys)
        assert warm.out == cold.out
        assert "0 misses" in warm.err  # fully served from the cache


class TestFingerprintMismatchAfterMutation:
    def test_mutated_corpus_scores_cold_not_stale(self, csv_pair, capsys, cab_world):
        """A cache persisted over yesterday's data must not poison a run
        over today's: content-fingerprint spaces miss, scoring runs cold,
        and the output equals a run with no cache at all."""
        left, right, tmp = csv_pair
        cache_path = tmp / "stale.bin"
        _run(left, right, cache_path, capsys)

        # "Corpus mutation": a different sample of the world on the left.
        world = cab_world.subset(cab_world.entities[:10])
        moved = sample_linkage_pair(world, 0.5, 0.5, rng=6)
        moved_left = tmp / "moved_left.csv"
        save_csv(moved.left, moved_left)

        uncached = main([str(moved_left), right])
        assert uncached == 0
        reference = capsys.readouterr()

        captured = _run(str(moved_left), right, cache_path, capsys)
        assert "0 hits" in captured.err  # no stale totals served
        assert captured.out == reference.out  # links identical to cacheless

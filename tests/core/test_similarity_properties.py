"""Property-based tests on similarity-score invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.corpus import HistoryCorpus
from repro.core.history import MobilityHistory
from repro.core.similarity import SimilarityConfig, SimilarityEngine
from repro.temporal import Windowing

WINDOWING = Windowing(0.0, 900.0)
LEVEL = 12

# A small bank of distinct locations around the SF area (all within the
# 30 km runaway at 15-minute windows except the last, which is an alibi
# distance away from the others).
LOCATIONS = [
    (37.7749, -122.4194),
    (37.8044, -122.2712),
    (37.6879, -122.4702),
    (37.9101, -122.0652),
    (38.5816, -121.4944),  # ~120 km away: alibi against the others
]

location_index = st.integers(min_value=0, max_value=len(LOCATIONS) - 1)
window_index = st.integers(min_value=0, max_value=11)
record_list = st.lists(
    st.tuples(window_index, location_index), min_size=1, max_size=10
)


def _history(entity, records):
    rows = np.array(
        [
            (window * 900.0 + 10.0, *LOCATIONS[location])
            for window, location in records
        ]
    )
    return MobilityHistory.from_columns(
        entity, rows[:, 0], rows[:, 1], rows[:, 2], WINDOWING, LEVEL
    )


def _engine(left_records, right_records, config=None):
    background = [(20, 0)]  # far-future bin keeping IDF informative
    left = {
        "u": _history("u", left_records),
        "bg": _history("bg", background),
    }
    right = {
        "v": _history("v", right_records),
        "bg": _history("bg", background),
    }
    return SimilarityEngine(
        HistoryCorpus(left, LEVEL),
        HistoryCorpus(right, LEVEL),
        config or SimilarityConfig(),
    )


@given(left=record_list, right=record_list)
@settings(max_examples=60, deadline=None)
def test_score_is_finite_and_deterministic(left, right):
    engine = _engine(left, right)
    first = engine.score("u", "v")
    second = engine.score("u", "v")
    assert first == second
    assert np.isfinite(first)


@given(left=record_list, right=record_list)
@settings(max_examples=60, deadline=None)
def test_duplicating_records_in_same_bin_does_not_change_score(left, right):
    """Bins are sets of cells per window: a second record in an existing
    (window, cell) bin changes counts but not the bin structure, so the
    similarity score is invariant (aggregation property, Sec. 2.3)."""
    baseline = _engine(left, right).score("u", "v")
    duplicated = _engine(left + [left[0]], right).score("u", "v")
    assert np.isclose(baseline, duplicated)


@given(left=record_list, right=record_list)
@settings(max_examples=60, deadline=None)
def test_swapping_sides_preserves_score(left, right):
    """With mirrored corpora the score is symmetric in (u, v)."""
    forward = _engine(left, right).score("u", "v")
    backward = _engine(right, left).score("u", "v")
    assert np.isclose(forward, backward)


# Physically consistent traces: locations 0..2 are mutually within the
# 30 km runaway, so no window can contain an impossible jump.  (With
# location 4 allowed, hypothesis correctly finds that an entity whose OWN
# trace contains an impossible jump earns an alibi penalty even against an
# identical twin — Alg. 1's MFN pass treats intra-window spread as
# counter-evidence regardless of whose records they are.)
consistent_record_list = st.lists(
    st.tuples(window_index, st.integers(min_value=0, max_value=2)),
    min_size=1,
    max_size=10,
)


@given(records=consistent_record_list)
@settings(max_examples=60, deadline=None)
def test_self_score_nonnegative_for_consistent_traces(records):
    """An entity with a physically consistent trace scored against an
    identical twin never incurs alibi penalties."""
    engine = _engine(records, records)
    score, stats = engine.score_with_stats("u", "v")
    assert score >= 0.0
    assert stats.alibi_bin_pairs == 0


@given(records=record_list, window=window_index)
@settings(max_examples=60, deadline=None)
def test_asynchronous_extra_window_never_decreases_unnormalised_score(
    records, window
):
    """Adding right-side records in a window the left is silent in cannot
    reduce the unnormalised score (asynchrony tolerance, property 2)."""
    config = SimilarityConfig(use_normalization=False)
    left = [(w, l) for w, l in records if w != window]
    if not left:
        return
    baseline = _engine(left, records, config).score("u", "v")
    extended = _engine(left, records + [(window, 0)], config).score("u", "v")
    # The added bin either matches nothing (window silent on the left) or
    # adds a pair in an already-common window; only same-window additions
    # can change the score, and the left is silent in `window`.
    if all(w != window for w, _ in left):
        assert np.isclose(baseline, extended) or extended >= baseline - 1e-9


@given(records=record_list)
@settings(max_examples=40, deadline=None)
def test_alibi_location_reduces_score(records):
    """Appending a far-away record in a window the other side occupies
    can only lower the score (alibi penalty, property 3)."""
    config = SimilarityConfig(use_normalization=False)
    window = records[0][0]
    near = [(window, 0)]
    baseline = _engine(near, [(window, 0)], config).score("u", "v")
    with_alibi = _engine(near, [(window, 0), (window, 4)], config).score("u", "v")
    assert with_alibi <= baseline + 1e-9

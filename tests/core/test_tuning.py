"""Unit tests for automatic spatial-level tuning (Sec. 3.3)."""

import pytest

from repro.core.tuning import (
    auto_spatial_level,
    auto_spatial_level_for_pair,
    self_similarity_curve,
)


LEVELS = (4, 8, 12, 16)


class TestSelfSimilarityCurve:
    def test_curve_length_matches_levels(self, cab_world):
        ratios = self_similarity_curve(
            cab_world, levels=LEVELS, sample_size=4, pairs_per_entity=4, rng=1
        )
        assert len(ratios) == len(LEVELS)

    def test_ratios_bounded(self, cab_world):
        ratios = self_similarity_curve(
            cab_world, levels=LEVELS, sample_size=4, pairs_per_entity=4, rng=1
        )
        for ratio in ratios:
            assert 0.0 <= ratio <= 1.5

    def test_curve_decreases_with_detail(self, cab_world):
        """Sec. 3.3: higher spatial detail separates entities, so the
        pair/self similarity ratio falls (allowing small noise)."""
        ratios = self_similarity_curve(
            cab_world, levels=LEVELS, sample_size=6, pairs_per_entity=6, rng=2
        )
        assert ratios[0] > ratios[-1]

    def test_single_entity_raises(self, cab_world):
        solo = cab_world.subset(cab_world.entities[:1])
        with pytest.raises(ValueError):
            self_similarity_curve(solo, levels=LEVELS, rng=1)

    def test_reproducible(self, cab_world):
        a = self_similarity_curve(
            cab_world, levels=LEVELS, sample_size=4, pairs_per_entity=4, rng=9
        )
        b = self_similarity_curve(
            cab_world, levels=LEVELS, sample_size=4, pairs_per_entity=4, rng=9
        )
        assert a == b


class TestAutoSpatialLevel:
    def test_choice_within_candidates(self, cab_world):
        choice = auto_spatial_level(
            cab_world, levels=LEVELS, sample_size=4, pairs_per_entity=4, rng=3
        )
        assert choice.level in LEVELS
        assert choice.levels == LEVELS
        assert len(choice.ratios) == len(LEVELS)

    def test_interior_level_chosen_for_dense_city(self, cab_world):
        """The dense cab world should not need the extreme levels: the
        elbow lands strictly inside the sweep."""
        choice = auto_spatial_level(
            cab_world,
            levels=(4, 6, 8, 10, 12, 14, 16, 18, 20),
            sample_size=6,
            pairs_per_entity=6,
            rng=4,
        )
        assert 6 <= choice.level <= 18

    def test_curve_accessor(self, cab_world):
        choice = auto_spatial_level(
            cab_world, levels=LEVELS, sample_size=4, pairs_per_entity=4, rng=5
        )
        curve = choice.curve()
        assert set(curve) == set(LEVELS)

    def test_pair_tuning_takes_higher_level(self, cab_pair):
        level = auto_spatial_level_for_pair(
            cab_pair.left,
            cab_pair.right,
            levels=LEVELS,
            sample_size=4,
            pairs_per_entity=4,
            rng=6,
        )
        left_choice = auto_spatial_level(
            cab_pair.left, levels=LEVELS, sample_size=4, pairs_per_entity=4, rng=6
        )
        assert level in LEVELS
        assert level >= min(LEVELS)
        # The pair decision can never be below either individual choice by
        # construction — sanity-check against one side.
        assert level >= min(left_choice.level, level)

"""ScoreCache persistence: save/load round-trip, fingerprint validation,
and cross-process warm-starts through the pipeline's content-keyed
corpora."""

import os
import pickle

import numpy as np
import pytest

from repro.core.corpus import content_fingerprint
from repro.core.history import MobilityHistory
from repro.core.score_cache import ScoreCache
from repro.pipeline import LinkageConfig, LinkagePipeline
from repro.temporal import Windowing


def _populated_cache(cap=None):
    cache = ScoreCache(cap=cap)
    cache.store("space-a", "u", "v", 1, 2, raw=1.5,
                bin_comparisons=4, common_windows=2, alibi_bin_pairs=1)
    cache.store("space-a", "w", "x", 0, 0, raw=-0.25,
                bin_comparisons=9, common_windows=3, alibi_bin_pairs=0)
    cache.store(("content", "abc"), "u", "x", 3, 1, raw=0.75,
                bin_comparisons=1, common_windows=1, alibi_bin_pairs=0)
    return cache


class TestRoundTrip:
    def test_entries_survive(self, tmp_path):
        cache = _populated_cache()
        path = cache.save(tmp_path / "scores.bin")
        loaded = ScoreCache.load(path)
        assert len(loaded) == len(cache)
        entry = loaded.lookup("space-a", "u", "v", 1, 2)
        assert entry.raw == 1.5
        assert entry.bin_comparisons == 4
        assert entry.common_windows == 2
        assert entry.alibi_bin_pairs == 1
        assert loaded.lookup(("content", "abc"), "u", "x", 3, 1).raw == 0.75

    def test_version_keys_still_enforced(self, tmp_path):
        path = _populated_cache().save(tmp_path / "scores.bin")
        loaded = ScoreCache.load(path)
        assert loaded.lookup("space-a", "u", "v", 9, 2) is None

    def test_cap_and_counters_survive(self, tmp_path):
        cache = _populated_cache(cap=16)
        hits, misses = cache.hits, cache.misses
        loaded = ScoreCache.load(cache.save(tmp_path / "scores.bin"))
        assert loaded._cap == 16
        assert (loaded.hits, loaded.misses) == (hits, misses)

    def test_batch_lookup_after_load(self, tmp_path):
        loaded = ScoreCache.load(
            _populated_cache().save(tmp_path / "scores.bin")
        )
        batch = loaded.lookup_batch(
            "space-a",
            [("u", "v"), ("w", "x"), ("n", "o")],
            np.array([1, 0, 0]),
            np.array([2, 0, 0]),
        )
        assert batch.hit.tolist() == [True, True, False]
        assert batch.raw[:2].tolist() == [1.5, -0.25]


class TestValidation:
    def test_truncated_file_rejected(self, tmp_path):
        path = _populated_cache().save(tmp_path / "scores.bin")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ValueError, match="score cache"):
            ScoreCache.load(path)

    def test_foreign_pickle_rejected_without_unpickling(self, tmp_path):
        path = tmp_path / "other.bin"
        path.write_bytes(pickle.dumps({"something": "else"}))
        with pytest.raises(ValueError, match="bad magic"):
            ScoreCache.load(path)

    def test_corrupted_payload_rejected(self, tmp_path):
        from repro.core.score_cache import _PERSIST_MAGIC

        path = _populated_cache().save(tmp_path / "scores.bin")
        data = bytearray(path.read_bytes())
        data[len(_PERSIST_MAGIC) + 32 + 5] ^= 0xFF  # flip a payload byte
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="fingerprint mismatch"):
            ScoreCache.load(path)

    def test_wrong_format_version_rejected(self, tmp_path):
        from repro.core.score_cache import _PERSIST_MAGIC

        path = _populated_cache().save(tmp_path / "scores.bin")
        data = bytearray(path.read_bytes())
        data[len(_PERSIST_MAGIC) - 1] = 99  # bump the format byte
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="format"):
            ScoreCache.load(path)

    def test_header_only_file_rejected(self, tmp_path):
        from repro.core.score_cache import _PERSIST_MAGIC

        path = tmp_path / "stub.bin"
        path.write_bytes(_PERSIST_MAGIC[:-1])  # magic, no format byte
        with pytest.raises(ValueError, match="format"):
            ScoreCache.load(path)


class TestAtomicSave:
    """save() is all-or-nothing: a crash mid-write must never leave a
    truncated or half-written file where a good one used to be."""

    def _crash(self, *args, **kwargs):
        raise OSError("injected mid-save crash")

    def test_killed_before_replace_keeps_old_file(self, tmp_path, monkeypatch):
        """Die between writing the temp file and renaming it over the
        target: the previously saved cache must still load, byte-exact."""
        path = tmp_path / "scores.bin"
        _populated_cache().save(path)
        good = path.read_bytes()

        bigger = _populated_cache()
        bigger.store("space-b", "y", "z", 0, 0, raw=0.5,
                     bin_comparisons=2, common_windows=1, alibi_bin_pairs=0)
        monkeypatch.setattr(os, "replace", self._crash)
        with pytest.raises(OSError, match="injected"):
            bigger.save(path)
        monkeypatch.undo()

        assert path.read_bytes() == good
        loaded = ScoreCache.load(path)
        assert len(loaded) == len(_populated_cache())

    def test_killed_during_fsync_keeps_old_file(self, tmp_path, monkeypatch):
        """Die while flushing the temp file (before the rename was even
        attempted): same guarantee."""
        path = tmp_path / "scores.bin"
        _populated_cache().save(path)
        good = path.read_bytes()

        monkeypatch.setattr(os, "fsync", self._crash)
        with pytest.raises(OSError, match="injected"):
            _populated_cache().save(path)
        monkeypatch.undo()

        assert path.read_bytes() == good
        ScoreCache.load(path)

    def test_failed_save_leaves_no_temp_litter(self, tmp_path, monkeypatch):
        """The orphaned temp file is cleaned up on failure — repeated
        crashes must not accumulate ``*.tmp`` debris next to the target."""
        path = tmp_path / "scores.bin"
        monkeypatch.setattr(os, "replace", self._crash)
        for _ in range(3):
            with pytest.raises(OSError, match="injected"):
                _populated_cache().save(path)
        monkeypatch.undo()

        assert list(tmp_path.iterdir()) == []

        # And a clean retry after the fault clears succeeds normally.
        saved = _populated_cache().save(path)
        assert ScoreCache.load(saved).lookup("space-a", "u", "v", 1, 2).raw == 1.5
        assert sorted(p.name for p in tmp_path.iterdir()) == ["scores.bin"]

    def test_first_save_failure_leaves_no_file(self, tmp_path, monkeypatch):
        """With no previous save, a crashed save leaves nothing behind —
        not a partial file that a later load would half-trust."""
        path = tmp_path / "scores.bin"
        monkeypatch.setattr(os, "fsync", self._crash)
        with pytest.raises(OSError, match="injected"):
            _populated_cache().save(path)
        monkeypatch.undo()
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []


class TestContentFingerprint:
    def _histories(self, shift=0.0):
        windowing = Windowing(0.0, 900.0)
        return {
            "a": MobilityHistory.from_columns(
                "a", np.array([10.0, 1000.0]),
                np.array([37.77, 37.78 + shift]),
                np.array([-122.42, -122.41]), windowing, 12,
            ),
            "b": MobilityHistory.from_columns(
                "b", np.array([20.0]), np.array([37.80]),
                np.array([-122.40]), windowing, 12,
            ),
        }

    def test_same_content_same_fingerprint(self):
        assert content_fingerprint(self._histories(), 12) == (
            content_fingerprint(self._histories(), 12)
        )

    def test_different_content_or_level_differs(self):
        base = content_fingerprint(self._histories(), 12)
        assert content_fingerprint(self._histories(shift=0.3), 12) != base
        assert content_fingerprint(self._histories(), 10) != base


class TestPipelineWarmStart:
    def test_second_run_served_from_loaded_cache(self, cab_pair, tmp_path):
        """Simulates two CLI invocations: run, save, load, run again —
        the second run's scoring is all cache hits, links identical."""
        path = tmp_path / "scores.bin"
        pipeline = LinkagePipeline(LinkageConfig())

        cold_cache = ScoreCache()
        cold = pipeline.run(
            cab_pair.left, cab_pair.right, score_cache=cold_cache
        )
        assert cold_cache.misses > 0
        cold_cache.save(path)

        warm_cache = ScoreCache.load(path)
        misses_before = warm_cache.misses
        warm = pipeline.run(
            cab_pair.left, cab_pair.right, score_cache=warm_cache
        )
        assert warm_cache.misses == misses_before  # nothing re-scored
        assert warm_cache.hits >= cold.candidate_pairs
        assert warm.links == cold.links
        assert warm.edges == cold.edges

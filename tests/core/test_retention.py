"""Retention: policy units, corpus removal deltas, eviction parity.

The acceptance contract pinned here: a relink after entity retirement is
**bit-identical** to a cold run over the surviving entities — links,
scores, counters — and the retired entities' footprint (corpus flats, df
slots, LSH placements, score-cache rows) is actually reclaimed.
"""

import numpy as np
import pytest

from repro.core.corpus import HistoryCorpus
from repro.core.history import MobilityHistory
from repro.core.retention import (
    MaxEntitiesRetention,
    NoRetention,
    SlidingWindowRetention,
    build_retention,
    retention_policies,
)
from repro.core.score_cache import ScoreCache
from repro.core.streaming import StreamingLinker
from repro.data import Record
from repro.lsh import LshConfig
from repro.pipeline import LinkageConfig
from repro.temporal import Windowing

WIDTH = 900.0


def _history(eid, times, lat=37.77, lng=-122.42, level=12):
    t = np.asarray(times, dtype=np.float64)
    return MobilityHistory.from_columns(
        eid, t, np.full(t.shape, lat), np.full(t.shape, lng),
        Windowing(0.0, WIDTH), level,
    )


# ---------------------------------------------------------------------------
# policy units
# ---------------------------------------------------------------------------
class TestPolicies:
    def test_registry_has_builtins(self):
        assert {"none", "sliding_window", "max_entities"} <= set(
            retention_policies.names()
        )

    def test_build_retention_unknown_name(self):
        with pytest.raises(KeyError, match="retention policy"):
            build_retention("lru", 4)

    @pytest.mark.parametrize("cls", [SlidingWindowRetention, MaxEntitiesRetention])
    def test_window_must_be_positive(self, cls):
        with pytest.raises(ValueError):
            cls(0)

    def test_none_keeps_everything(self):
        histories = {"a": _history("a", [10.0])}
        assert NoRetention(0).retire(histories, 10_000) == set()

    def test_sliding_window_retires_by_activity_age(self):
        histories = {
            "old": _history("old", [10.0]),            # window 0
            "mid": _history("mid", [10.0, 5 * WIDTH]),  # latest window 5
            "new": _history("new", [9 * WIDTH]),        # window 9
        }
        policy = SlidingWindowRetention(4)
        # current window 9: horizon = 5; "old" (0) is out, "mid" (5) in.
        assert policy.retire(histories, 9) == {"old"}
        # A wider window keeps everyone.
        assert SlidingWindowRetention(20).retire(histories, 9) == set()

    def test_sliding_window_never_empties_a_side(self):
        histories = {
            "a": _history("a", [10.0]),
            "b": _history("b", [WIDTH]),  # most recent; ties impossible
        }
        doomed = SlidingWindowRetention(1).retire(histories, 1000)
        assert doomed == {"a"}  # "b" spared despite being out of window

    def test_max_entities_is_lru_by_last_activity(self):
        histories = {
            "a": _history("a", [10.0]),
            "b": _history("b", [10.0, 3 * WIDTH]),
            "c": _history("c", [6 * WIDTH]),
        }
        assert MaxEntitiesRetention(2).retire(histories, 6) == {"a"}
        assert MaxEntitiesRetention(1).retire(histories, 6) == {"a", "b"}
        assert MaxEntitiesRetention(3).retire(histories, 6) == set()

    def test_max_entities_ties_break_on_entity_id(self):
        histories = {
            "b": _history("b", [10.0]),
            "a": _history("a", [10.0]),
            "c": _history("c", [WIDTH]),
        }
        # Same latest window: the smaller id goes first.
        assert MaxEntitiesRetention(2).retire(histories, 1) == {"a"}


# ---------------------------------------------------------------------------
# corpus removal deltas
# ---------------------------------------------------------------------------
class TestCorpusEviction:
    def _histories(self):
        return {
            "a": _history("a", [10.0, 950.0], lat=37.77),
            "b": _history("b", [20.0], lat=37.77),
            "c": _history("c", [2000.0], lat=37.90, lng=-122.10),
        }

    def test_eviction_reported_and_stats_match_fresh(self):
        histories = self._histories()
        corpus = HistoryCorpus(histories, 12)
        corpus.arrays()  # materialise before the delta
        del histories["b"]
        delta = corpus.refresh()
        assert delta.evicted == ("b",)
        assert delta.dirty_entities == ()
        assert not delta.empty
        assert delta.global_drift > 0.0  # |U_E| moved: every idf shifted

        fresh = HistoryCorpus(dict(histories), 12)
        assert corpus.size == fresh.size == 2
        assert corpus.avg_bins == pytest.approx(fresh.avg_bins)
        for entity in fresh.entities:
            assert corpus.bins_with_idf(entity) == fresh.bins_with_idf(entity)
            assert corpus.relative_size(entity) == pytest.approx(
                fresh.relative_size(entity)
            )

    def test_eviction_compacts_flats_eagerly(self):
        histories = self._histories()
        corpus = HistoryCorpus(histories, 12)
        corpus.arrays()
        before = corpus.memory_stats()
        assert before["flat_entries"] == before["flat_live"] == 4
        del histories["a"]  # 2 of the 4 flat entries retire
        corpus.refresh()
        after = corpus.memory_stats()
        # Eager compaction: no garbage survives an eviction.
        assert after["flat_entries"] == after["flat_live"] == 2
        assert after["entities"] == 2

    def test_eviction_recycles_df_slots(self):
        histories = self._histories()
        corpus = HistoryCorpus(histories, 12)
        slots_before = corpus.memory_stats()["df_slots"]
        del histories["c"]  # its bin is held by nobody else
        corpus.refresh()
        assert corpus.memory_stats()["df_slots"] < slots_before
        assert corpus.document_frequency(*next(iter(corpus._df_slot))) > 0

    def test_eviction_with_shared_bin_reports_idf_drift(self):
        histories = {
            "a": _history("a", [10.0]),
            "b": _history("b", [20.0]),  # same bin as "a"
            "c": _history("c", [2000.0], lat=37.90, lng=-122.10),
        }
        corpus = HistoryCorpus(histories, 12)
        del histories["b"]
        delta = corpus.refresh()
        # The (window 0, shared cell) bin's df fell 2 -> 1 while staying
        # shared with the surviving "a": that is IDF drift.
        assert delta.idf_drift
        assert "a" in corpus.entities_with_bins(list(delta.idf_drift))

    def test_eviction_then_regrowth_round_trips(self):
        histories = self._histories()
        corpus = HistoryCorpus(histories, 12)
        corpus.arrays()
        del histories["b"]
        corpus.refresh()
        histories["d"] = _history("d", [3000.0], lat=37.95, lng=-122.05)
        delta = corpus.refresh()
        assert delta.dirty_entities == ("d",)
        fresh = HistoryCorpus(dict(histories), 12)
        for entity in fresh.entities:
            assert corpus.bins_with_idf(entity) == fresh.bins_with_idf(entity)

    def test_refresh_refuses_to_empty_the_corpus(self):
        histories = {"a": _history("a", [10.0])}
        corpus = HistoryCorpus(histories, 12)
        del histories["a"]
        with pytest.raises(ValueError, match="empty"):
            corpus.refresh()
        # The guard fires *before* any retraction: statistics intact, and
        # restoring the entity makes the corpus fully usable again.
        assert corpus.size == 1
        assert corpus.memory_stats()["total_bins"] == 1
        histories["a"] = _history("a", [10.0])
        assert corpus.refresh().empty  # same version: nothing to do
        assert corpus.bins_with_idf("a")

    def test_eviction_before_arrays_built_is_fine(self):
        histories = self._histories()
        corpus = HistoryCorpus(histories, 12)
        del histories["b"]
        corpus.refresh()
        assert corpus.window_index("a") is not None
        assert "b" not in corpus._window_index


# ---------------------------------------------------------------------------
# streaming eviction parity
# ---------------------------------------------------------------------------
def _round_records(side, round_idx, per_side=5, windows_per_round=8,
                   records_per_entity=3):
    """Deterministic rolling workload: round r's entities are active only
    inside round r's window span; matching ids land on matching spots."""
    jitter = 0.0 if side == "left" else 1.5e-4
    records = []
    base = round_idx * windows_per_round * WIDTH
    for i in range(per_side):
        entity = f"e{round_idx}_{i}"
        for k in range(records_per_entity):
            records.append(
                Record(
                    entity,
                    37.5 + 0.01 * i + 0.001 * k + jitter,
                    -122.4 + 0.005 * round_idx + jitter,
                    base + (k * 2 + i % 2) * WIDTH + 30.0,
                )
            )
    return records


def _feed(linker, observed, round_idx, per_side=5):
    for side in ("left", "right"):
        batch = _round_records(side, round_idx, per_side=per_side)
        observed[side].extend(batch)
        linker.observe(side, batch)


def _stream(config=None, rounds=3, relink_each=True, **kwargs):
    linker = StreamingLinker(origin=0.0, config=config, **kwargs)
    observed = {"left": [], "right": []}
    for round_idx in range(rounds):
        _feed(linker, observed, round_idx)
        if relink_each:
            linker.relink()
    return linker, observed


def _cold_on_survivors(linker, observed, config=None):
    """A fresh linker fed only the surviving entities' records."""
    cold = StreamingLinker(origin=0.0, config=config)
    for side in ("left", "right"):
        survivors = set(linker._sides[side])
        cold.observe(
            side,
            [r for r in observed[side] if r.entity_id in survivors],
        )
    return cold.relink()


def _assert_bit_identical(result, cold_result):
    assert result.links == cold_result.links
    assert result.candidate_pairs == cold_result.candidate_pairs
    cold_scores = {(e.left, e.right): e.weight for e in cold_result.edges}
    scores = {(e.left, e.right): e.weight for e in result.edges}
    assert scores == cold_scores  # bit-identical, not approximate
    assert result.threshold.threshold == cold_result.threshold.threshold
    assert result.stats.bin_comparisons == cold_result.stats.bin_comparisons
    assert result.stats.common_windows == cold_result.stats.common_windows
    assert result.stats.alibi_bin_pairs == cold_result.stats.alibi_bin_pairs


class TestStreamingRetirement:
    def test_sliding_window_evicts_and_matches_cold(self):
        config = LinkageConfig(
            retention="sliding_window", retention_window=12, threshold="none"
        )
        linker, observed = _stream(config)
        _feed(linker, observed, 3)  # ages rounds 0-1 out of the window
        final = linker.relink()
        stats = linker.last_relink
        assert stats.evicted_left > 0 and stats.evicted_right > 0
        assert linker.num_left_entities == 10  # rounds 2-3 survive
        _assert_bit_identical(
            final, _cold_on_survivors(linker, observed, config)
        )

    def test_max_entities_evicts_and_matches_cold(self):
        config = LinkageConfig(
            retention="max_entities", retention_window=7, threshold="none"
        )
        linker, observed = _stream(config)
        linker.relink()
        assert linker.num_left_entities == 7
        assert linker.num_right_entities == 7
        final = linker.relink()  # zero-delta after the bound settled
        _assert_bit_identical(
            final, _cold_on_survivors(linker, observed, config)
        )

    @pytest.mark.parametrize("backend", ["numpy", "python"])
    def test_eviction_parity_per_backend(self, backend):
        from repro.core.similarity import SimilarityConfig

        config = LinkageConfig(
            similarity=SimilarityConfig(backend=backend),
            retention="sliding_window",
            retention_window=10,
            threshold="none",
        )
        linker, observed = _stream(config)
        _feed(linker, observed, 3)
        final = linker.relink()
        assert linker.last_relink.evicted_left > 0
        _assert_bit_identical(
            final, _cold_on_survivors(linker, observed, config)
        )

    def test_eviction_parity_with_lsh(self):
        """Pure-retirement delta under LSH: evictions with no new data
        must withdraw placements in place (no index rebuild) and still
        match a cold run over the survivors."""
        config = LinkageConfig(
            lsh=LshConfig(threshold=0.3, step_windows=8, spatial_level=14),
            threshold="none",
        )
        policy = SlidingWindowRetention(10_000)  # retires nothing yet
        linker = StreamingLinker(origin=0.0, config=config, retention=policy)
        observed = {"left": [], "right": []}
        for round_idx in range(4):
            _feed(linker, observed, round_idx)
            linker.relink()
        policy.window = 12  # tighten: rounds 0-1 now out of the window
        final = linker.relink()
        assert linker.last_relink.evicted_left > 0
        # Retirement alone must not force an index rebuild.
        assert not linker.last_relink.lsh_rebuilt
        _assert_bit_identical(
            final, _cold_on_survivors(linker, observed, config)
        )

    def test_lsh_placements_are_withdrawn(self):
        config = LinkageConfig(
            lsh=LshConfig(threshold=0.3, step_windows=8, spatial_level=14),
            retention="sliding_window",
            retention_window=10,
        )
        linker, _ = _stream(config)
        linker.relink()
        index = linker._lsh_index
        live = set(linker._sides["left"]) | set(linker._sides["right"])
        placed = {entity for (_, entity) in index._placements}
        assert placed <= live
        assert linker.memory_stats()["lsh_entities"] == (
            linker.num_left_entities + linker.num_right_entities
        )

    def test_score_cache_rows_are_dropped(self):
        config = LinkageConfig(
            retention="sliding_window", retention_window=10, threshold="none"
        )
        linker, _ = _stream(config)
        linker.relink()
        live = set(linker._sides["left"]) | set(linker._sides["right"])
        for (_, left_entity, right_entity) in linker.score_cache._rows:
            assert left_entity in live and right_entity in live

    def test_retired_id_reobserved_restarts_cleanly(self):
        """An id that retires and later returns restarts at history
        version 0 — a stale cached row under matching versions would be
        served as a hit, so retirement must have dropped it."""
        config = LinkageConfig(
            retention="sliding_window", retention_window=6, threshold="none"
        )
        linker = StreamingLinker(origin=0.0, config=config)
        observed = {"left": [], "right": []}

        def feed(round_idx):
            for side in ("left", "right"):
                batch = _round_records(side, round_idx, per_side=3)
                observed[side].extend(batch)
                linker.observe(side, batch)

        feed(0)
        linker.relink()
        retired_records = {
            side: list(observed[side]) for side in ("left", "right")
        }
        feed(2)  # round 0 ages out (span 8 windows/round > window 6)
        linker.relink()
        assert linker.last_relink.evicted_left == 3
        # The round-0 ids come back with *different* geometry.
        for side in ("left", "right"):
            jitter = 0.0 if side == "left" else 1.5e-4
            returned = [
                Record(f"e0_{i}", 37.9 + 0.01 * i + jitter, -122.3 + jitter,
                       (2 * 8 + 5) * WIDTH + 60.0 * i)
                for i in range(3)
            ]
            observed[side].extend(returned)
            linker.observe(side, returned)
        final = linker.relink()
        # Retirement dropped the ids' round-0 data for good: the cold
        # reference holds each survivor's records *since its last
        # (re)creation* — exactly what the incremental linker holds.
        reference = {
            side: [r for r in observed[side]
                   if r not in retired_records[side]]
            for side in ("left", "right")
        }
        cold = StreamingLinker(origin=0.0, config=config)
        cold.observe("left", reference["left"])
        cold.observe("right", reference["right"])
        _assert_bit_identical(final, cold.relink())

    def test_explicit_policy_object_wins_over_config(self):
        linker = StreamingLinker(
            origin=0.0,
            retention=MaxEntitiesRetention(4),
        )
        for side in ("left", "right"):
            linker.observe(side, _round_records(side, 0, per_side=6))
        linker.relink()
        assert linker.num_left_entities == 4

    def test_attached_score_cache_is_used(self):
        cache = ScoreCache()
        linker = StreamingLinker(origin=0.0, score_cache=cache)
        for side in ("left", "right"):
            linker.observe(side, _round_records(side, 0))
        linker.relink()
        assert linker.score_cache is cache
        assert len(cache) > 0

    def test_lsh_candidates_without_lsh_config_errors_by_name(self):
        linker = StreamingLinker(
            origin=0.0, config=LinkageConfig(candidates="lsh")
        )
        for side in ("left", "right"):
            linker.observe(side, _round_records(side, 0, per_side=2))
        with pytest.raises(ValueError, match="LinkageConfig.lsh"):
            linker.relink()

    def test_no_retention_keeps_everything(self):
        linker, _ = _stream(LinkageConfig(threshold="none"))
        linker.relink()
        assert linker.num_left_entities == 15
        assert linker.last_relink.evicted_left == 0

    def test_memory_stays_bounded_while_baseline_grows(self):
        bounded, _ = _stream(
            LinkageConfig(
                retention="sliding_window", retention_window=12,
                threshold="none",
            ),
            rounds=4,
        )
        unbounded, _ = _stream(LinkageConfig(threshold="none"), rounds=4)
        bounded_stats = bounded.memory_stats()
        unbounded_stats = unbounded.memory_stats()
        assert bounded_stats["left_entities"] < unbounded_stats["left_entities"]
        assert (
            bounded_stats["left_flat_entries"]
            < unbounded_stats["left_flat_entries"]
        )
        # Eager compaction: after an eviction round, no garbage survives.
        assert (
            bounded_stats["left_flat_entries"]
            == bounded_stats["left_flat_live"]
        )
        assert bounded_stats["left_df_slots"] < unbounded_stats["left_df_slots"]

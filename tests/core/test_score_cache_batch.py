"""Vectorized ScoreCache batch API: parity with the per-pair calls."""

import numpy as np

from repro.core.score_cache import ScoreCache


def _store_batch(cache, space, pairs, u, v, raws):
    cache.store_batch(
        space,
        pairs,
        np.asarray(u, dtype=np.int64),
        np.asarray(v, dtype=np.int64),
        raw=np.asarray(raws, dtype=np.float64),
        bin_comparisons=np.arange(len(pairs), dtype=np.int64) + 1,
        common_windows=np.ones(len(pairs), dtype=np.int64),
        alibi_bin_pairs=np.zeros(len(pairs), dtype=np.int64),
    )


class TestLookupBatch:
    def test_empty_cache_all_miss(self):
        cache = ScoreCache()
        batch = cache.lookup_batch(
            "s", [("a", "b"), ("c", "d")], np.zeros(2, np.int64),
            np.zeros(2, np.int64),
        )
        assert batch.hit.tolist() == [False, False]
        assert cache.misses == 2 and cache.hits == 0

    def test_hits_match_per_pair_lookup(self):
        cache = ScoreCache()
        pairs = [("a", "x"), ("b", "y"), ("c", "z")]
        _store_batch(cache, "s", pairs, [0, 1, 2], [5, 6, 7], [1.0, 2.0, 3.0])
        batch = cache.lookup_batch(
            "s", pairs, np.array([0, 1, 2]), np.array([5, 6, 7])
        )
        assert batch.hit.all()
        assert batch.raw.tolist() == [1.0, 2.0, 3.0]
        assert batch.bin_comparisons.tolist() == [1, 2, 3]
        for pair, u, v, raw in zip(pairs, (0, 1, 2), (5, 6, 7), (1.0, 2.0, 3.0)):
            assert cache.lookup("s", pair[0], pair[1], u, v).raw == raw

    def test_version_mismatch_is_miss_and_evicts(self):
        cache = ScoreCache()
        _store_batch(cache, "s", [("a", "x")], [0], [0], [1.0])
        batch = cache.lookup_batch(
            "s", [("a", "x")], np.array([1]), np.array([0])
        )
        assert not batch.hit[0]
        assert len(cache) == 0  # stale entry evicted, as in lookup()

    def test_mixed_hit_miss_counters(self):
        cache = ScoreCache()
        _store_batch(cache, "s", [("a", "x"), ("b", "y")], [0, 0], [0, 0], [1.0, 2.0])
        batch = cache.lookup_batch(
            "s",
            [("a", "x"), ("b", "y"), ("c", "z")],
            np.array([0, 9, 0]),
            np.array([0, 0, 0]),
        )
        assert batch.hit.tolist() == [True, False, False]
        assert cache.hits == 1 and cache.misses == 2

    def test_duplicate_stale_pair_in_batch(self):
        """A pair duplicated within one batch whose entry is stale must
        count two misses (per-pair lookup equivalence), not crash on the
        second eviction."""
        cache = ScoreCache()
        _store_batch(cache, "s", [("u", "v")], [1], [1], [1.0])
        batch = cache.lookup_batch(
            "s",
            [("u", "v"), ("u", "v")],
            np.array([2, 2]),
            np.array([2, 2]),
        )
        assert batch.hit.tolist() == [False, False]
        assert cache.misses == 2
        assert len(cache) == 0

    def test_space_scoping(self):
        cache = ScoreCache()
        _store_batch(cache, "mine", [("a", "x")], [0], [0], [1.0])
        batch = cache.lookup_batch(
            "theirs", [("a", "x")], np.array([0]), np.array([0])
        )
        assert not batch.hit[0]

    def test_store_batch_overwrites_existing_rows(self):
        cache = ScoreCache()
        _store_batch(cache, "s", [("a", "x")], [0], [0], [1.0])
        _store_batch(cache, "s", [("a", "x")], [1], [0], [7.0])
        assert len(cache) == 1
        assert cache.lookup("s", "a", "x", 1, 0).raw == 7.0


class TestCapWithBatches:
    def test_store_batch_respects_cap(self):
        cache = ScoreCache(cap=2)
        pairs = [("a", "x"), ("b", "y"), ("c", "z")]
        _store_batch(cache, "s", pairs, [0, 0, 0], [0, 0, 0], [1.0, 2.0, 3.0])
        assert len(cache) == 2
        assert cache.lookup("s", "a", "x", 0, 0) is None  # oldest evicted
        assert cache.lookup("s", "c", "z", 0, 0).raw == 3.0

    def test_batch_hits_refresh_lru_order_under_cap(self):
        cache = ScoreCache(cap=2)
        _store_batch(cache, "s", [("a", "x"), ("b", "y")], [0, 0], [0, 0], [1.0, 2.0])
        # Touch "a" via the batch path, then insert a third entry: "b"
        # (now least recent) should be the one evicted.
        batch = cache.lookup_batch(
            "s", [("a", "x")], np.array([0]), np.array([0])
        )
        assert batch.hit[0]
        _store_batch(cache, "s", [("c", "z")], [0], [0], [3.0])
        assert cache.lookup("s", "b", "y", 0, 0) is None
        assert cache.lookup("s", "a", "x", 0, 0) is not None

    def test_row_recycling_bounds_storage(self):
        cache = ScoreCache(cap=4)
        for round_number in range(10):
            pairs = [(f"u{round_number}", f"v{k}") for k in range(4)]
            _store_batch(cache, "s", pairs, [0] * 4, [0] * 4, [1.0] * 4)
        assert len(cache) == 4
        # High-water mark stays at the working-set size: rows recycle.
        assert cache._high <= 8


class TestInvalidation:
    def test_invalidate_pairs_frees_rows_for_reuse(self):
        cache = ScoreCache()
        _store_batch(cache, "s", [("a", "x"), ("b", "y")], [0, 0], [0, 0], [1.0, 2.0])
        assert cache.invalidate_pairs({"a"}, set()) == 1
        assert len(cache) == 1
        high_before = cache._high
        _store_batch(cache, "s", [("c", "z")], [0], [0], [3.0])
        assert cache._high == high_before  # reused the freed row

    def test_clear_resets_rows(self):
        cache = ScoreCache()
        _store_batch(cache, "s", [("a", "x")], [0], [0], [1.0])
        cache.clear()
        assert len(cache) == 0
        batch = cache.lookup_batch(
            "s", [("a", "x")], np.array([0]), np.array([0])
        )
        assert not batch.hit[0]

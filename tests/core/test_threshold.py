"""Unit tests for the automated stop threshold (Sec. 3.2)."""

import numpy as np
import pytest

from repro.core.threshold import (
    expected_prf,
    gmm_stop_threshold,
    otsu_threshold,
    two_means_threshold,
)


@pytest.fixture()
def separated_weights(rng):
    """Matched-edge weights: a false-positive cluster near 5 and a
    true-positive cluster near 50 (the Fig. 2 situation)."""
    false_links = rng.normal(5.0, 1.5, 120)
    true_links = rng.normal(50.0, 6.0, 100)
    return np.concatenate([false_links, true_links])


class TestGmmThreshold:
    def test_threshold_separates_clusters(self, separated_weights):
        decision = gmm_stop_threshold(separated_weights)
        assert 10.0 < decision.threshold < 40.0

    def test_expected_metrics_high_for_separable(self, separated_weights):
        decision = gmm_stop_threshold(separated_weights)
        assert decision.expected_precision > 0.9
        # The paper's R(s) = c2 * (1 - F_m2(s)) is scaled by the component
        # weight, so its ceiling is c2 (~0.45 here); the survival factor
        # (1 - F_m2) itself should be near 1 for separable clusters.
        c2 = float(decision.model.weights_[1])
        assert decision.expected_recall == pytest.approx(c2, rel=0.1)
        survival = decision.expected_recall / c2
        assert survival > 0.9

    def test_accepts_above_threshold(self, separated_weights):
        decision = gmm_stop_threshold(separated_weights)
        assert decision.accepts(55.0)
        assert not decision.accepts(5.0)

    def test_model_attached(self, separated_weights):
        decision = gmm_stop_threshold(separated_weights)
        assert decision.model is not None
        assert decision.method == "gmm"

    def test_degenerate_few_samples(self):
        decision = gmm_stop_threshold([1.0, 2.0])
        assert decision.method.endswith("degenerate")
        assert decision.threshold == 1.0  # keeps everything

    def test_degenerate_constant_weights(self):
        decision = gmm_stop_threshold([3.0] * 50)
        assert decision.method.endswith("degenerate")
        assert decision.accepts(3.0)

    def test_empty_weights(self):
        decision = gmm_stop_threshold([])
        assert decision.threshold == 0.0

    def test_overlapping_clusters_still_finite(self, rng):
        weights = np.concatenate([rng.normal(5, 2, 100), rng.normal(8, 2, 100)])
        decision = gmm_stop_threshold(weights)
        assert np.isfinite(decision.threshold)


class TestExpectedPrf:
    def test_recall_decreases_with_threshold(self, separated_weights):
        decision = gmm_stop_threshold(separated_weights)
        grid = np.linspace(separated_weights.min(), separated_weights.max(), 50)
        _, recall, _ = expected_prf(decision.model, grid)
        assert (np.diff(recall) <= 1e-12).all()

    def test_precision_increases_with_threshold_in_gap(self, separated_weights):
        decision = gmm_stop_threshold(separated_weights)
        grid = np.linspace(5.0, 45.0, 50)
        precision, _, _ = expected_prf(decision.model, grid)
        assert precision[-1] > precision[0]

    def test_f1_peaks_at_threshold(self, separated_weights):
        decision = gmm_stop_threshold(separated_weights)
        grid = np.linspace(
            separated_weights.min(), separated_weights.max(), 1024
        )
        _, _, f1 = expected_prf(decision.model, grid)
        assert decision.expected_f1 == pytest.approx(float(f1.max()), rel=1e-6)


class TestOtsuAndTwoMeans:
    def test_otsu_separates(self, separated_weights):
        decision = otsu_threshold(separated_weights)
        # Otsu lands between the clusters (false links top out near ~10).
        assert 8.0 < decision.threshold < 45.0
        assert decision.method == "otsu"

    def test_two_means_separates(self, separated_weights):
        decision = two_means_threshold(separated_weights)
        assert 10.0 < decision.threshold < 45.0
        assert decision.method == "two_means"

    def test_methods_agree_on_separable_data(self, separated_weights):
        """The paper observed GMM / Otsu / 2-means behave alike; on a
        well-separated distribution all three land inside the gap."""
        gmm = gmm_stop_threshold(separated_weights).threshold
        otsu = otsu_threshold(separated_weights).threshold
        kmeans = two_means_threshold(separated_weights).threshold
        for value in (gmm, otsu, kmeans):
            assert 8.0 < value < 45.0

    def test_otsu_degenerate(self):
        assert otsu_threshold([1.0]).method.endswith("degenerate")

    def test_two_means_degenerate(self):
        assert two_means_threshold([2.0, 2.0, 2.0, 2.0]).method.endswith("degenerate")

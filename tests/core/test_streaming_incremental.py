"""Incremental relink machinery: cold-parity, cache reuse, delta corpora.

The contract pinned here is the one the streaming benchmark relies on: an
incremental ``relink()`` after a delta must produce **exactly** the links
(and, to 1e-9, the scores) of a cold relink over the same records, while
re-scoring only the pairs the delta could have touched.
"""

import numpy as np
import pytest

from repro.core.corpus import HistoryCorpus
from repro.core.history import MobilityHistory
from repro.core.score_cache import ScoreCache
from repro.core.similarity import SimilarityConfig
from repro.core.slim import SlimConfig
from repro.core.streaming import StreamingLinker
from repro.data import Record
from repro.lsh import LshConfig
from repro.temporal import Windowing


def _split_records(pair, fraction=0.75, moved_entities=()):
    """Split a linkage pair's records into (initial, delta) streams.

    Entities in ``moved_entities`` contribute their late records to the
    delta; everyone else's records are all initial — so the delta dirties
    only a handful of histories, like a real trickle of updates.
    """
    start = min(pair.left.time_range()[0], pair.right.time_range()[0])
    end = max(pair.left.time_range()[1], pair.right.time_range()[1])
    cut = start + fraction * (end - start)
    initial = {"left": [], "right": []}
    delta = {"left": [], "right": []}
    for side, dataset in (("left", pair.left), ("right", pair.right)):
        for record in dataset.records():
            late = record.timestamp > cut and record.entity_id in moved_entities
            (delta if late else initial)[side].append(record)
    return start, initial, delta


def _warm_linker(origin, initial, config, **kwargs):
    linker = StreamingLinker(origin=origin, config=config, **kwargs)
    linker.observe("left", initial["left"])
    linker.observe("right", initial["right"])
    return linker


def _cold_result(origin, initial, delta, config):
    """A from-scratch linker fed *all* records, relinked once."""
    linker = StreamingLinker(origin=origin, config=config)
    linker.observe("left", initial["left"] + delta["left"])
    linker.observe("right", initial["right"] + delta["right"])
    return linker.relink()


def _assert_results_match(incremental, cold):
    assert incremental.links == cold.links
    assert incremental.candidate_pairs == cold.candidate_pairs
    cold_scores = {(e.left, e.right): e.weight for e in cold.edges}
    inc_scores = {(e.left, e.right): e.weight for e in incremental.edges}
    assert inc_scores.keys() == cold_scores.keys()
    for key, weight in cold_scores.items():
        assert inc_scores[key] == pytest.approx(weight, abs=1e-9)
    assert incremental.threshold.threshold == pytest.approx(
        cold.threshold.threshold, abs=1e-9
    )
    assert incremental.stats.bin_comparisons == cold.stats.bin_comparisons
    assert incremental.stats.common_windows == cold.stats.common_windows
    assert incremental.stats.alibi_bin_pairs == cold.stats.alibi_bin_pairs


class TestIncrementalColdParity:
    @pytest.mark.parametrize("backend", ["numpy", "python"])
    def test_delta_relink_equals_cold_relink(self, cab_pair, backend):
        """The acceptance contract: incremental == cold, bit for bit on
        links, 1e-9 on scores, counter for counter on stats."""
        config = SlimConfig(similarity=SimilarityConfig(backend=backend))
        moved = set(cab_pair.left.entities[:3]) | set(cab_pair.right.entities[:2])
        origin, initial, delta = _split_records(cab_pair, moved_entities=moved)

        linker = _warm_linker(origin, initial, config)
        linker.relink()  # warm relink over the initial state
        linker.observe("left", delta["left"])
        linker.observe("right", delta["right"])
        incremental = linker.relink()

        _assert_results_match(incremental, _cold_result(origin, initial, delta, config))

    def test_sparse_delta_mostly_reuses_the_cache(self, sm_pair):
        """On a sparse corpus a small delta leaves most pairs untouched:
        the relink must serve them from the cache (dense corpora couple
        more pairs through shared-bin IDF drift, and legitimately rescore
        more)."""
        config = SlimConfig()
        moved = set(sm_pair.left.entities[:5])
        origin, initial, delta = _split_records(sm_pair, moved_entities=moved)

        linker = _warm_linker(origin, initial, config)
        linker.relink()
        linker.observe("left", delta["left"])
        incremental = linker.relink()
        stats = linker.last_relink
        assert stats.pairs_rescored < stats.candidate_pairs / 2
        assert stats.cache_hits + stats.pairs_rescored == stats.candidate_pairs

        _assert_results_match(incremental, _cold_result(origin, initial, delta, config))

    def test_delta_relink_with_lsh(self, cab_pair):
        config = SlimConfig(
            lsh=LshConfig(threshold=0.4, step_windows=8, spatial_level=14)
        )
        moved = set(cab_pair.left.entities[:3])
        origin, initial, delta = _split_records(cab_pair, moved_entities=moved)

        linker = _warm_linker(origin, initial, config)
        linker.relink()
        linker.observe("left", delta["left"])
        incremental = linker.relink()
        assert not linker.last_relink.lsh_rebuilt

        _assert_results_match(incremental, _cold_result(origin, initial, delta, config))

    def test_new_entity_delta_still_exact(self, cab_pair):
        """Adding an entity changes |U_E| and so *every* IDF; the global
        drift must invalidate the whole side rather than serve stale
        totals."""
        config = SlimConfig()
        newcomer = cab_pair.left.entities[0]
        origin, initial, delta = _split_records(cab_pair, moved_entities=())
        held_back = [r for r in initial["left"] if r.entity_id == newcomer]
        initial["left"] = [r for r in initial["left"] if r.entity_id != newcomer]
        delta["left"] = held_back

        linker = _warm_linker(origin, initial, config)
        linker.relink()
        linker.observe("left", delta["left"])
        incremental = linker.relink()
        # Every cached pair total was IDF-invalidated (corpus size moved).
        assert linker.last_relink.pairs_rescored == linker.last_relink.candidate_pairs

        _assert_results_match(incremental, _cold_result(origin, initial, delta, config))

    def test_idf_tolerance_accumulates_across_relinks(self):
        """Repeated under-tolerance drifts must count as their sum: once
        the accumulated drift on a bin crosses the tolerance, its holders
        are invalidated (and the accumulator restarts)."""
        from repro.core.corpus import CorpusDelta

        linker = StreamingLinker(origin=0.0, idf_tolerance=0.5)
        linker.observe(
            "left",
            [Record("a", 37.77, -122.42, 10.0), Record("b", 37.77, -122.42, 20.0)],
        )
        linker.observe("right", [Record("v", 37.77, -122.42, 30.0)])
        linker.relink()
        corpus = linker._corpora["left"]
        shared_bin = next(iter(corpus._df_slot))
        drip = CorpusDelta(("ghost",), {shared_bin: 0.3}, 0.0)
        assert linker._idf_affected("left", drip) == set()  # 0.3 <= 0.5
        affected = linker._idf_affected("left", drip)  # accumulated 0.6
        assert {"a", "b"} <= affected
        # Invalidation reset the accumulator; the next drip is small again.
        assert linker._idf_affected("left", drip) == set()

    def test_global_drift_accumulates_across_relinks(self):
        from repro.core.corpus import CorpusDelta

        linker = StreamingLinker(origin=0.0, idf_tolerance=0.5)
        linker.observe("left", [Record("a", 37.77, -122.42, 10.0)])
        linker.observe("right", [Record("v", 37.77, -122.42, 30.0)])
        linker.relink()
        drip = CorpusDelta(("ghost",), {}, 0.3)
        assert linker._idf_affected("left", drip) == set()
        assert "a" in linker._idf_affected("left", drip)  # 0.6 > 0.5
        assert linker._idf_affected("left", drip) == set()  # restarted

    def test_idf_tolerance_trades_exactness_for_reuse(self, cab_pair):
        """A generous tolerance must reuse strictly more of the cache than
        tolerance zero on the same delta (and still link sensibly)."""
        moved = set(cab_pair.left.entities[:3])
        origin, initial, delta = _split_records(cab_pair, moved_entities=moved)
        rescored = {}
        for tolerance in (0.0, 10.0):
            linker = _warm_linker(
                origin, initial, SlimConfig(), idf_tolerance=tolerance
            )
            linker.relink()
            linker.observe("left", delta["left"])
            linker.relink()
            rescored[tolerance] = linker.last_relink.pairs_rescored
        assert rescored[10.0] <= rescored[0.0]


class TestStreamingEdgeCases:
    def _records(self, entity, base, lat, lng, count=6, period=900.0):
        return [
            Record(entity, lat + 1e-4 * k, lng, base + period * k)
            for k in range(count)
        ]

    def test_zero_delta_relink_is_cache_noop(self, cab_pair):
        origin, initial, _ = _split_records(cab_pair)
        linker = _warm_linker(origin, initial, SlimConfig())
        first = linker.relink()
        again = linker.relink()
        stats = linker.last_relink
        assert stats.pairs_rescored == 0
        assert stats.dirty_left == 0 and stats.dirty_right == 0
        assert stats.idf_invalidated == 0
        assert stats.cache_hits == stats.candidate_pairs
        assert again.links == first.links
        scores_first = {(e.left, e.right): e.weight for e in first.edges}
        scores_again = {(e.left, e.right): e.weight for e in again.edges}
        assert scores_again == scores_first

    def test_same_entity_observed_on_both_sides(self):
        linker = StreamingLinker(origin=0.0)
        linker.observe("left", self._records("x", 10.0, 37.77, -122.42))
        linker.observe("left", self._records("other", 10.0, 37.90, -122.10))
        # The right side sees the *same* entity id with jittered records.
        linker.observe("right", self._records("x", 40.0, 37.7702, -122.4198))
        linker.observe("right", self._records("other", 40.0, 37.9002, -122.0998))
        result = linker.relink()
        assert result.links.get("x") == "x"
        assert result.links.get("other") == "other"
        # Sides stay independent corpora even under shared ids.
        assert linker._corpora["left"] is not linker._corpora["right"]

    def test_out_of_order_timestamps_within_window(self):
        """Records arriving out of timestamp order (even within one
        window) must bin identically to in-order arrival."""
        ordered = StreamingLinker(origin=0.0)
        shuffled = StreamingLinker(origin=0.0)
        left = self._records("a", 10.0, 37.77, -122.42) + self._records(
            "b", 15.0, 37.90, -122.10
        )
        right = self._records("a2", 40.0, 37.7701, -122.4199) + self._records(
            "b2", 45.0, 37.9001, -122.0999
        )
        reversed_left = list(reversed(left))
        reversed_right = list(reversed(right))
        ordered.observe("left", left)
        ordered.observe("right", right)
        shuffled.observe("left", reversed_left)
        shuffled.observe("right", reversed_right)
        result_ordered = ordered.relink()
        result_shuffled = shuffled.relink()
        assert result_shuffled.links == result_ordered.links
        scores_o = {(e.left, e.right): e.weight for e in result_ordered.edges}
        scores_s = {(e.left, e.right): e.weight for e in result_shuffled.edges}
        assert scores_s == scores_o

        # Late arrival of an *early* record (out of order across batches).
        ordered.observe("left", [Record("a", 37.7705, -122.42, 12.0)])
        late = ordered.relink()
        cold = StreamingLinker(origin=0.0)
        cold.observe("left", left + [Record("a", 37.7705, -122.42, 12.0)])
        cold.observe("right", right)
        assert late.links == cold.relink().links


class TestCorpusRefresh:
    def _histories(self, windowing, level=12):
        def build(eid, t, lat, lng):
            return MobilityHistory.from_columns(
                eid, np.array(t), np.array(lat), np.array(lng), windowing, level
            )

        return {
            "a": build("a", [10.0, 950.0], [37.77, 37.78], [-122.42, -122.41]),
            "b": build("b", [20.0], [37.77], [-122.42]),
            "c": build("c", [2000.0], [37.90], [-122.10]),
        }

    def _assert_corpus_equivalent(self, grown, fresh):
        assert grown.size == fresh.size
        assert grown.avg_bins == pytest.approx(fresh.avg_bins)
        for entity in fresh.entities:
            assert grown.bins_with_idf(entity) == fresh.bins_with_idf(entity)
            assert grown.relative_size(entity) == pytest.approx(
                fresh.relative_size(entity)
            )
            # The array view must gather to the same (window, cell, idf)
            # content even though the flat layout differs.
            gi, fi = grown.window_index(entity), fresh.window_index(entity)
            assert gi.windows.tolist() == fi.windows.tolist()
            ga, fa = grown.arrays(), fresh.arrays()
            gt, ft = grown.cell_table(), fresh.cell_table()
            for (go, gc), (fo, fc) in zip(
                zip(gi.offsets.tolist(), gi.counts.tolist()),
                zip(fi.offsets.tolist(), fi.counts.tolist()),
            ):
                assert gc == fc
                assert ga.cells[go : go + gc].tolist() == fa.cells[fo : fo + fc].tolist()
                np.testing.assert_allclose(
                    ga.idf[go : go + gc], fa.idf[fo : fo + fc], atol=1e-12
                )
                np.testing.assert_allclose(
                    gt.lat[ga.slots[go : go + gc]], ft.lat[fa.slots[fo : fo + fc]]
                )

    def test_refresh_matches_fresh_corpus(self):
        windowing = Windowing(0.0, 900.0)
        histories = self._histories(windowing)
        corpus = HistoryCorpus(histories, 12)
        corpus.arrays()  # materialise the array views before the delta

        histories["a"].extend(
            np.array([3000.0, 3100.0]),
            np.array([37.95, 37.96]),
            np.array([-122.05, -122.06]),
        )
        delta = corpus.refresh()
        assert delta.dirty_entities == ("a",)
        assert delta.global_drift == 0.0

        self._assert_corpus_equivalent(corpus, HistoryCorpus(histories, 12))

    def test_refresh_reports_idf_drift_on_shared_bins(self):
        windowing = Windowing(0.0, 900.0)
        histories = self._histories(windowing)
        corpus = HistoryCorpus(histories, 12)
        # "c" moves onto the bin "a" and "b" already share in window 0.
        histories["c"].extend(np.array([30.0]), np.array([37.77]), np.array([-122.42]))
        delta = corpus.refresh()
        assert delta.dirty_entities == ("c",)
        assert delta.idf_drift  # df of the shared (window 0) bin moved
        drifted_keys = list(delta.idf_drift)
        holders = corpus.entities_with_bins(drifted_keys)
        assert {"a", "b", "c"} <= holders

    def test_refresh_with_new_entity_reports_global_drift(self):
        windowing = Windowing(0.0, 900.0)
        histories = self._histories(windowing)
        corpus = HistoryCorpus(histories, 12)
        histories["d"] = MobilityHistory.from_columns(
            "d", np.array([40.0]), np.array([37.80]), np.array([-122.40]),
            windowing, 12,
        )
        delta = corpus.refresh()
        assert "d" in delta.dirty_entities
        assert delta.global_drift > 0.0
        self._assert_corpus_equivalent(corpus, HistoryCorpus(histories, 12))

    def test_repeated_refresh_compacts_garbage(self):
        windowing = Windowing(0.0, 900.0)
        histories = self._histories(windowing)
        corpus = HistoryCorpus(histories, 12)
        corpus.arrays()
        for step in range(8):
            histories["a"].extend(
                np.array([4000.0 + 900.0 * step]),
                np.array([37.80 + 0.01 * step]),
                np.array([-122.40]),
            )
            corpus.refresh()
            # Live entries never fall below half the flat length.
            assert corpus._flat_live * 2 >= len(corpus._flat_cells)
        self._assert_corpus_equivalent(corpus, HistoryCorpus(histories, 12))

    def test_cell_table_extends_for_new_cells(self):
        windowing = Windowing(0.0, 900.0)
        histories = self._histories(windowing)
        corpus = HistoryCorpus(histories, 12)
        table_before = corpus.cell_table()
        known = len(table_before.cell_ids)
        histories["b"].extend(np.array([60.0]), np.array([40.71]), np.array([-74.00]))
        corpus.refresh()
        table_after = corpus.cell_table()
        assert len(table_after.cell_ids) > known
        # Old slots kept their geometry rows (append-only extension).
        np.testing.assert_array_equal(
            table_after.cell_ids[:known], table_before.cell_ids[:known]
        )
        # The superseded frozen snapshot was not mutated: its directory
        # still describes exactly the rows its own arrays have.
        assert len(table_before.slot_of) == known
        assert max(table_before.slot_of.values()) < known


class TestScoreCacheUnits:
    def test_lru_eviction_beyond_cap(self):
        cache = ScoreCache(cap=2)
        for name in ("a", "b", "c"):
            cache.store("s", name, "x", 0, 0, 1.0, 1, 1, 0)
        assert len(cache) == 2
        assert cache.lookup("s", "a", "x", 0, 0) is None  # evicted
        assert cache.lookup("s", "c", "x", 0, 0) is not None

    def test_spaces_are_disjoint(self):
        cache = ScoreCache()
        cache.store("space1", "u", "v", 0, 0, 1.0, 1, 1, 0)
        assert cache.lookup("space2", "u", "v", 0, 0) is None
        assert cache.lookup("space1", "u", "v", 0, 0).raw == 1.0

    def test_invalidate_by_side(self):
        cache = ScoreCache()
        cache.store("s", "u1", "v1", 0, 0, 1.0, 1, 1, 0)
        cache.store("s", "u2", "v2", 0, 0, 2.0, 1, 1, 0)
        assert cache.invalidate_pairs(set(), {"v2"}) == 1
        assert cache.lookup("s", "u1", "v1", 0, 0) is not None
        assert cache.lookup("s", "u2", "v2", 0, 0) is None

    def test_invalidation_scoped_to_space(self):
        """Shared caches: one owner's IDF drift must not clobber another
        space's entries for the same entity ids."""
        cache = ScoreCache()
        cache.store("mine", "u", "v", 0, 0, 1.0, 1, 1, 0)
        cache.store("theirs", "u", "v", 0, 0, 2.0, 1, 1, 0)
        assert cache.invalidate_pairs({"u"}, set(), space="mine") == 1
        assert cache.lookup("mine", "u", "v", 0, 0) is None
        assert cache.lookup("theirs", "u", "v", 0, 0).raw == 2.0


class TestLshIncremental:
    def test_remove_and_readd_matches_cold_rebuild(self, cab_pair):
        from repro.core.history import build_histories
        from repro.lsh import LshIndex, SignatureSpec, build_signature
        from repro.temporal import common_windowing

        lsh = LshConfig(threshold=0.4, step_windows=8, spatial_level=14)
        windowing = common_windowing(
            (cab_pair.left.time_range(), cab_pair.right.time_range()), 900.0
        )
        left = build_histories(cab_pair.left, windowing, 14)
        right = build_histories(cab_pair.right, windowing, 14)
        latest = max(cab_pair.left.time_range()[1], cab_pair.right.time_range()[1])
        spec = SignatureSpec(0, windowing.index_of(latest) + 1, 8, 14)

        incremental = LshIndex(lsh, spec)
        incremental.add_histories(left, right)
        target = next(iter(left))
        # Churn one entity: remove, then re-add the same signature.
        assert incremental.remove(target, "left") > 0
        incremental.add(target, build_signature(left[target], spec), "left")

        cold = LshIndex(lsh, spec)
        cold.add_histories(left, right)
        assert incremental.candidate_pairs() == cold.candidate_pairs()
        assert incremental.stats.hashed_bands_left == cold.stats.hashed_bands_left

    def test_remove_unknown_entity_is_noop(self):
        from repro.lsh import LshIndex, SignatureSpec

        index = LshIndex(LshConfig(), SignatureSpec(0, 64, 16, 16))
        assert index.remove("ghost", "left") == 0


class TestTuningCacheReuse:
    def test_repeated_sweeps_hit_the_cache(self, tiny_dataset):
        from repro.core.history import build_histories
        from repro.core.tuning import auto_spatial_level
        from repro.temporal import common_windowing

        levels = (8, 10, 12)
        windowing = common_windowing((tiny_dataset.time_range(),), 900.0)
        histories = build_histories(tiny_dataset, windowing, max(levels))
        cache = ScoreCache()
        first = auto_spatial_level(
            tiny_dataset, levels=levels, rng=3, windowing=windowing,
            score_cache=cache, histories=histories,
        )
        misses_after_first = cache.misses
        assert misses_after_first > 0 and cache.hits == 0
        second = auto_spatial_level(
            tiny_dataset, levels=levels, rng=3, windowing=windowing,
            score_cache=cache, histories=histories,
        )
        assert second.level == first.level
        assert cache.misses == misses_after_first  # all pairs served cached
        assert cache.hits > 0

    def test_cache_without_caller_histories_stays_untouched(self, tiny_dataset):
        """Internally built histories die with the call — depositing
        entries under their identity would be pure pollution (and id()
        aliasing risk), so the cache must be bypassed entirely."""
        from repro.core.tuning import auto_spatial_level

        cache = ScoreCache()
        auto_spatial_level(tiny_dataset, levels=(8, 10), rng=3, score_cache=cache)
        assert len(cache) == 0
        assert cache.hits == 0 and cache.misses == 0

    def test_pair_tuning_reuses_cache_with_histories(self, tiny_dataset):
        from repro.core.history import build_histories
        from repro.core.tuning import auto_spatial_level_for_pair
        from repro.temporal import common_windowing

        levels = (8, 10, 12)
        windowing = common_windowing((tiny_dataset.time_range(),), 900.0)
        histories = build_histories(tiny_dataset, windowing, max(levels))
        cache = ScoreCache()
        first = auto_spatial_level_for_pair(
            tiny_dataset, tiny_dataset, levels=levels, rng=5,
            score_cache=cache,
            left_histories=histories, right_histories=histories,
        )
        misses = cache.misses
        assert misses > 0
        second = auto_spatial_level_for_pair(
            tiny_dataset, tiny_dataset, levels=levels, rng=5,
            score_cache=cache,
            left_histories=histories, right_histories=histories,
        )
        assert second == first
        assert cache.misses == misses and cache.hits > 0

"""Unit tests for MNN/MFN/all-pairs bin pairing."""


from repro.core.pairing import (
    all_pairs,
    cartesian_index_pairs,
    distance_matrix,
    greedy_index_pairs,
    mfn_pairs,
    mnn_pairs,
)

# A toy metric over integer "cells": distance is |a - b|.
def metric(a: int, b: int) -> float:
    return float(abs(a - b))


class TestDistanceMatrix:
    def test_shape_and_values(self):
        matrix = distance_matrix([0, 10], [1, 5, 20], metric)
        assert matrix == [[1.0, 5.0, 20.0], [9.0, 5.0, 10.0]]

    def test_empty(self):
        assert distance_matrix([], [1], metric) == []


class TestMnn:
    def test_single_pair(self):
        assert mnn_pairs([3], [7], metric) == [(3, 7, 4.0)]

    def test_picks_globally_closest_first(self):
        # Paper's example: bins b1 vs {b2 near, b3 far} -> MNN pairs (b1, b2).
        pairs = mnn_pairs([0], [2, 100], metric)
        assert pairs == [(0, 2, 2.0)]

    def test_count_is_min_size(self):
        pairs = mnn_pairs([0, 10, 20], [1, 11], metric)
        assert len(pairs) == 2

    def test_no_bin_reused(self):
        pairs = mnn_pairs([0, 1, 2], [0, 1, 2], metric)
        lefts = [p[0] for p in pairs]
        rights = [p[1] for p in pairs]
        assert len(set(lefts)) == len(lefts)
        assert len(set(rights)) == len(rights)

    def test_greedy_not_globally_optimal_but_mutual(self):
        # u = {0, 3}, v = {2, 4}: globally closest is (3,2)=1; then (0,4)=4.
        pairs = mnn_pairs([0, 3], [2, 4], metric)
        assert (3, 2, 1.0) in pairs
        assert (0, 4, 4.0) in pairs

    def test_identical_sets_pair_exactly(self):
        pairs = mnn_pairs([5, 9], [9, 5], metric)
        assert sorted(d for _, _, d in pairs) == [0.0, 0.0]

    def test_empty_side(self):
        assert mnn_pairs([], [1, 2], metric) == []
        assert mnn_pairs([1, 2], [], metric) == []

    def test_accepts_precomputed_matrix(self):
        cells_u, cells_v = [0, 10], [1, 5]
        matrix = distance_matrix(cells_u, cells_v, metric)
        assert mnn_pairs(cells_u, cells_v, metric, matrix) == mnn_pairs(
            cells_u, cells_v, metric
        )


class TestMfn:
    def test_picks_furthest(self):
        pairs = mfn_pairs([0], [2, 100], metric)
        assert pairs == [(0, 100, 100.0)]

    def test_paper_alibi_example(self):
        """Sec. 3.1: e1 has bin b1; e2 has b2 (distance d) and b3
        (distance d + r > runaway).  MNN hides the alibi; MFN finds it."""
        b1, b2, b3 = 0, 5, 100
        nearest = mnn_pairs([b1], [b2, b3], metric)
        furthest = mfn_pairs([b1], [b2, b3], metric)
        assert nearest == [(b1, b2, 5.0)]
        assert furthest == [(b1, b3, 100.0)]

    def test_count_is_min_size(self):
        assert len(mfn_pairs([0, 1], [5, 6, 7], metric)) == 2

    def test_single_elements_mfn_equals_mnn(self):
        assert mfn_pairs([3], [8], metric) == mnn_pairs([3], [8], metric)


class TestAllPairs:
    def test_cartesian_size(self):
        pairs = all_pairs([0, 1], [2, 3, 4], metric)
        assert len(pairs) == 6

    def test_includes_every_combination(self):
        pairs = {(a, b) for a, b, _ in all_pairs([0, 1], [2, 3], metric)}
        assert pairs == {(0, 2), (0, 3), (1, 2), (1, 3)}


class TestIndexCores:
    def test_greedy_index_pairs_empty_matrix(self):
        assert greedy_index_pairs([], reverse=False) == []
        assert greedy_index_pairs([[]], reverse=False) == []

    def test_greedy_index_single(self):
        assert greedy_index_pairs([[7.0]], reverse=True) == [(0, 0, 7.0)]

    def test_cartesian_index_pairs(self):
        assert cartesian_index_pairs([[1.0, 2.0]]) == [(0, 0, 1.0), (0, 1, 2.0)]

    def test_deterministic_tie_break(self):
        # Equal distances: sort is stable on (distance), so first-seen wins.
        first = greedy_index_pairs([[1.0, 1.0], [1.0, 1.0]], reverse=False)
        second = greedy_index_pairs([[1.0, 1.0], [1.0, 1.0]], reverse=False)
        assert first == second

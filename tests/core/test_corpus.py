"""Unit tests for corpus statistics (IDF, length norms)."""

import math

import numpy as np
import pytest

from repro.core.corpus import HistoryCorpus
from repro.core.history import MobilityHistory
from repro.temporal import Windowing

WINDOWING = Windowing(0.0, 900.0)


def _history(entity, rows, level=12):
    array = np.asarray(rows, dtype=np.float64)
    return MobilityHistory.from_columns(
        entity, array[:, 0], array[:, 1], array[:, 2], WINDOWING, level
    )


@pytest.fixture()
def corpus() -> HistoryCorpus:
    # Three entities; (window 0, SF cell) is shared by all, NYC by one.
    histories = {
        "a": _history("a", [(0.0, 37.77, -122.42), (950.0, 40.71, -74.0)]),
        "b": _history("b", [(0.0, 37.77, -122.42)]),
        "c": _history("c", [(0.0, 37.77, -122.42), (10.0, 37.90, -122.10)]),
    }
    return HistoryCorpus(histories, 12)


class TestBasics:
    def test_size(self, corpus):
        assert corpus.size == 3

    def test_entities(self, corpus):
        assert set(corpus.entities) == {"a", "b", "c"}

    def test_empty_corpus_raises(self):
        with pytest.raises(ValueError):
            HistoryCorpus({}, 12)

    def test_avg_bins(self, corpus):
        # a has 2 bins, b has 1, c has 2 -> mean 5/3.
        assert corpus.avg_bins == pytest.approx(5.0 / 3.0)

    def test_history_accessor(self, corpus):
        assert corpus.history("a").entity_id == "a"


class TestIdf:
    def test_shared_bin_low_idf(self, corpus):
        window, cell = 0, corpus.history("b").bins(12)[0][0]
        assert corpus.document_frequency(window, cell) == 3
        assert corpus.idf(window, cell) == pytest.approx(math.log(3 / 3))

    def test_unique_bin_high_idf(self, corpus):
        window = 1
        cell = corpus.history("a").bins(12)[1][0]
        assert corpus.document_frequency(window, cell) == 1
        assert corpus.idf(window, cell) == pytest.approx(math.log(3))

    def test_unknown_bin_raises(self, corpus):
        with pytest.raises(KeyError):
            corpus.idf(99, 12345)

    def test_idf_nonnegative(self, corpus):
        for entity in corpus.entities:
            for window, annotated in corpus.bins_with_idf(entity).items():
                for cell, idf in annotated:
                    assert idf >= 0.0

    def test_bins_with_idf_matches_direct_computation(self, corpus):
        for window, annotated in corpus.bins_with_idf("c").items():
            for cell, idf in annotated:
                assert idf == pytest.approx(corpus.idf(window, cell))

    def test_bins_with_idf_cached(self, corpus):
        assert corpus.bins_with_idf("a") is corpus.bins_with_idf("a")


class TestLengthNorm:
    def test_b_zero_ignores_length(self, corpus):
        for entity in corpus.entities:
            assert corpus.length_norm(entity, 0.0) == 1.0

    def test_b_one_is_relative_size(self, corpus):
        assert corpus.length_norm("b", 1.0) == pytest.approx(
            corpus.relative_size("b")
        )

    def test_relative_size_average_is_one(self, corpus):
        mean = np.mean([corpus.relative_size(e) for e in corpus.entities])
        assert mean == pytest.approx(1.0)

    def test_longer_history_larger_norm(self, corpus):
        assert corpus.length_norm("a", 0.5) > corpus.length_norm("b", 0.5)

    def test_invalid_b_raises(self, corpus):
        with pytest.raises(ValueError):
            corpus.length_norm("a", 1.5)
        with pytest.raises(ValueError):
            corpus.length_norm("a", -0.1)

    def test_level_mismatch_detected_via_property(self, corpus):
        assert corpus.level == 12

"""Unit tests for the streaming linker and incremental histories."""

import numpy as np
import pytest

from repro.core.history import MobilityHistory
from repro.core.streaming import StreamingLinker
from repro.data import Record
from repro.eval import precision_recall_f1
from repro.temporal import Windowing


class TestHistoryExtend:
    def test_extend_matches_bulk_build(self):
        windowing = Windowing(0.0, 900.0)
        timestamps = np.array([10.0, 950.0, 2000.0, 2100.0])
        lats = np.array([37.77, 37.78, 37.90, 37.77])
        lngs = np.array([-122.42, -122.41, -122.10, -122.42])

        bulk = MobilityHistory.from_columns("e", timestamps, lats, lngs, windowing, 14)
        incremental = MobilityHistory.from_columns(
            "e", timestamps[:2], lats[:2], lngs[:2], windowing, 14
        )
        incremental.extend(timestamps[2:], lats[2:], lngs[2:])

        assert incremental.num_records == bulk.num_records
        assert incremental.windows() == bulk.windows()
        assert incremental.bins(12) == bulk.bins(12)
        assert incremental.dominating_cell(0, 4, 12) == bulk.dominating_cell(0, 4, 12)

    def test_extend_invalidates_caches(self):
        windowing = Windowing(0.0, 900.0)
        history = MobilityHistory.from_columns(
            "e", np.array([10.0]), np.array([37.77]), np.array([-122.42]), windowing, 14
        )
        assert history.num_bins(12) == 1
        history.extend(np.array([950.0]), np.array([37.90]), np.array([-122.10]))
        assert history.num_bins(12) == 2
        assert history.dominating_cell(0, 2, 12) is not None

    def test_extend_before_origin_raises(self):
        windowing = Windowing(1000.0, 900.0)
        history = MobilityHistory.from_columns(
            "e", np.array([1500.0]), np.array([37.0]), np.array([-122.0]), windowing, 14
        )
        with pytest.raises(ValueError):
            history.extend(np.array([10.0]), np.array([37.0]), np.array([-122.0]))


class TestRegionRecords:
    def test_region_weight_sums_to_one(self):
        windowing = Windowing(0.0, 900.0)
        history = MobilityHistory.from_columns(
            "e",
            np.array([10.0]),
            np.array([37.77]),
            np.array([-122.42]),
            windowing,
            14,
            radii=np.array([2000.0]),
        )
        counts = history.counts_in_window(0, 14)
        assert len(counts) > 1
        assert sum(counts.values()) == pytest.approx(1.0)

    def test_small_radius_stays_single_cell(self):
        windowing = Windowing(0.0, 900.0)
        history = MobilityHistory.from_columns(
            "e",
            np.array([10.0]),
            np.array([37.77]),
            np.array([-122.42]),
            windowing,
            12,
            radii=np.array([1.0]),
        )
        assert len(history.counts_in_window(0, 12)) == 1

    def test_radii_shape_mismatch_raises(self):
        windowing = Windowing(0.0, 900.0)
        with pytest.raises(ValueError):
            MobilityHistory.from_columns(
                "e",
                np.array([10.0, 20.0]),
                np.array([37.0, 37.1]),
                np.array([-122.0, -122.1]),
                windowing,
                12,
                radii=np.array([5.0]),
            )

    def test_dominating_cell_respects_weights(self):
        """Two sharp records in one cell outweigh one fuzzy region record."""
        windowing = Windowing(0.0, 900.0)
        history = MobilityHistory.from_columns(
            "e",
            np.array([10.0, 20.0, 30.0]),
            np.array([37.77, 37.77, 37.90]),
            np.array([-122.42, -122.42, -122.10]),
            windowing,
            13,
            radii=np.array([1.0, 1.0, 3000.0]),
        )
        from repro.geo import CellId

        assert history.dominating_cell(0, 1, 13) == CellId.from_degrees(
            37.77, -122.42, 13
        ).id


class TestStreamingLinker:
    def _records(self, entity, base, lat, lng, count=8, period=900.0):
        return [
            Record(entity, lat + 1e-4 * k, lng, base + period * k)
            for k in range(count)
        ]

    def test_observe_groups_by_entity(self):
        linker = StreamingLinker(origin=0.0)
        ingested = linker.observe(
            "left",
            self._records("a", 10.0, 37.77, -122.42)
            + self._records("b", 10.0, 37.90, -122.10),
        )
        assert ingested == 16
        assert linker.num_left_entities == 2

    def test_invalid_side_raises(self):
        with pytest.raises(ValueError):
            StreamingLinker(origin=0.0).observe("middle", [])

    def test_relink_requires_both_sides(self):
        linker = StreamingLinker(origin=0.0)
        linker.observe("left", self._records("a", 10.0, 37.77, -122.42))
        with pytest.raises(ValueError):
            linker.relink()

    def test_relink_matches_batch_pipeline(self, cab_pair):
        from repro.core.slim import SlimConfig, SlimLinker

        origin = min(cab_pair.left.time_range()[0], cab_pair.right.time_range()[0])
        streaming = StreamingLinker(origin=origin, config=SlimConfig())
        streaming.observe("left", cab_pair.left.records())
        streaming.observe("right", cab_pair.right.records())
        stream_result = streaming.relink()

        batch_result = SlimLinker(SlimConfig()).link(cab_pair.left, cab_pair.right)
        assert stream_result.links == batch_result.links

    def test_incremental_ingestion_improves_linkage(self, cab_pair):
        """Relinking after more evidence arrives should not get worse."""
        origin = min(cab_pair.left.time_range()[0], cab_pair.right.time_range()[0])
        midpoint = origin + 0.3 * (
            max(cab_pair.left.time_range()[1], cab_pair.right.time_range()[1]) - origin
        )
        linker = StreamingLinker(origin=origin)
        linker.observe(
            "left", (r for r in cab_pair.left.records() if r.timestamp <= midpoint)
        )
        linker.observe(
            "right", (r for r in cab_pair.right.records() if r.timestamp <= midpoint)
        )
        early = linker.relink()
        early_f1 = precision_recall_f1(early.links, cab_pair.ground_truth).f1

        linker.observe(
            "left", (r for r in cab_pair.left.records() if r.timestamp > midpoint)
        )
        linker.observe(
            "right", (r for r in cab_pair.right.records() if r.timestamp > midpoint)
        )
        late = linker.relink()
        late_f1 = precision_recall_f1(late.links, cab_pair.ground_truth).f1
        assert late_f1 >= early_f1 - 0.1

    def test_total_windows_tracks_latest(self):
        linker = StreamingLinker(origin=0.0)
        linker.observe("left", [Record("a", 37.0, -122.0, 10.0)])
        assert linker.total_windows() == 1
        linker.observe("left", [Record("a", 37.0, -122.0, 10_000.0)])
        assert linker.total_windows() == 12

    def test_lsh_streaming(self, cab_pair):
        from repro.core.slim import SlimConfig
        from repro.lsh import LshConfig

        origin = min(cab_pair.left.time_range()[0], cab_pair.right.time_range()[0])
        linker = StreamingLinker(
            origin=origin,
            config=SlimConfig(
                lsh=LshConfig(threshold=0.4, step_windows=8, spatial_level=14)
            ),
        )
        linker.observe("left", cab_pair.left.records())
        linker.observe("right", cab_pair.right.records())
        result = linker.relink()
        assert result.candidate_pairs <= (
            linker.num_left_entities * linker.num_right_entities
        )

"""Unit tests for the proximity function (Eq. 1)."""

import math

import pytest

from repro.core.proximity import (
    DEFAULT_ALIBI_EPS,
    DEFAULT_MAX_SPEED_MPS,
    proximity,
    runaway_distance,
)


class TestRunawayDistance:
    def test_paper_constant(self):
        # 2 km/min over a 15-minute window = 30 km.
        assert runaway_distance(15 * 60, DEFAULT_MAX_SPEED_MPS) == pytest.approx(
            30_000.0
        )

    def test_scales_linearly_with_window(self):
        assert runaway_distance(1800, 10.0) == 2 * runaway_distance(900, 10.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            runaway_distance(0, 10.0)
        with pytest.raises(ValueError):
            runaway_distance(900, 0.0)


class TestProximityShape:
    R = 10_000.0

    def test_same_cell_is_one(self):
        assert proximity(0.0, self.R) == pytest.approx(1.0)

    def test_at_runaway_is_zero(self):
        assert proximity(self.R, self.R) == pytest.approx(0.0)

    def test_beyond_runaway_is_negative(self):
        assert proximity(self.R * 1.2, self.R) < 0.0

    def test_worst_case_clamped_finite(self):
        worst = proximity(self.R * 5, self.R)
        assert math.isfinite(worst)
        assert worst == pytest.approx(math.log2(DEFAULT_ALIBI_EPS))

    def test_clamp_at_twice_runaway(self):
        assert proximity(2 * self.R, self.R) == proximity(100 * self.R, self.R)

    def test_strictly_decreasing(self):
        values = [proximity(d, self.R) for d in range(0, 19_000, 1_000)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_slope_steepens_toward_alibi(self):
        # The paper: "the decrease to negative values is steep" — the drop
        # per unit distance grows as d approaches 2R.
        early = proximity(0.0, self.R) - proximity(1_000.0, self.R)
        late = proximity(17_000.0, self.R) - proximity(18_000.0, self.R)
        assert late > early

    def test_slightly_beyond_runaway_is_small_penalty(self):
        # Inaccurate GPS: a pair slightly past R gets a mild penalty, not a veto.
        value = proximity(self.R * 1.05, self.R)
        assert -0.2 < value < 0.0

    def test_custom_alibi_eps(self):
        strict = proximity(3 * self.R, self.R, alibi_eps=1e-3)
        assert strict == pytest.approx(math.log2(1e-3))

    def test_half_runaway_value(self):
        assert proximity(self.R / 2, self.R) == pytest.approx(math.log2(1.5))

"""Unit tests for bipartite matching."""

import pytest

from repro.core.matching import (
    Edge,
    greedy_max_matching,
    hungarian_matching,
    match,
    networkx_matching,
)

ALL_MATCHERS = [greedy_max_matching, hungarian_matching, networkx_matching]


def _is_valid_matching(edges):
    lefts = [e.left for e in edges]
    rights = [e.right for e in edges]
    return len(set(lefts)) == len(lefts) and len(set(rights)) == len(rights)


class TestGreedy:
    def test_highest_weight_first(self):
        edges = [Edge("a", "x", 1.0), Edge("a", "y", 5.0), Edge("b", "x", 3.0)]
        result = greedy_max_matching(edges)
        assert Edge("a", "y", 5.0) in result
        assert Edge("b", "x", 3.0) in result

    def test_one_to_one(self):
        edges = [
            Edge("a", "x", 5.0),
            Edge("a", "y", 4.0),
            Edge("b", "x", 4.5),
            Edge("b", "y", 1.0),
        ]
        result = greedy_max_matching(edges)
        assert _is_valid_matching(result)
        assert len(result) == 2

    def test_greedy_can_be_suboptimal(self):
        """Greedy picks (a,x,10) then (b,y,1)=11; optimal is (a,y,9)+(b,x,9)=18."""
        edges = [
            Edge("a", "x", 10.0),
            Edge("a", "y", 9.0),
            Edge("b", "x", 9.0),
            Edge("b", "y", 1.0),
        ]
        greedy = sum(e.weight for e in greedy_max_matching(edges))
        exact = sum(e.weight for e in hungarian_matching(edges))
        assert greedy == 11.0
        assert exact == 18.0

    def test_empty(self):
        assert greedy_max_matching([]) == []

    def test_deterministic_tie_break(self):
        edges = [Edge("b", "y", 2.0), Edge("a", "x", 2.0)]
        assert greedy_max_matching(edges) == greedy_max_matching(list(reversed(edges)))


class TestExactMatchers:
    @pytest.mark.parametrize("matcher", [hungarian_matching, networkx_matching])
    def test_finds_optimal_assignment(self, matcher):
        edges = [
            Edge("a", "x", 10.0),
            Edge("a", "y", 9.0),
            Edge("b", "x", 9.0),
            Edge("b", "y", 1.0),
        ]
        result = matcher(edges)
        assert _is_valid_matching(result)
        assert sum(e.weight for e in result) == 18.0

    @pytest.mark.parametrize("matcher", [hungarian_matching, networkx_matching])
    def test_only_existing_edges_linked(self, matcher):
        edges = [Edge("a", "x", 5.0), Edge("b", "x", 3.0)]
        result = matcher(edges)
        # Only one right vertex exists; at most one link possible.
        assert len(result) == 1
        assert result[0] == Edge("a", "x", 5.0)

    @pytest.mark.parametrize("matcher", ALL_MATCHERS)
    def test_empty(self, matcher):
        assert matcher([]) == []

    @pytest.mark.parametrize("matcher", ALL_MATCHERS)
    def test_single_edge(self, matcher):
        assert matcher([Edge("a", "x", 1.0)]) == [Edge("a", "x", 1.0)]

    @pytest.mark.parametrize("matcher", [hungarian_matching, networkx_matching])
    def test_duplicate_edges_keep_best(self, matcher):
        edges = [Edge("a", "x", 1.0), Edge("a", "x", 7.0)]
        result = matcher(edges)
        assert result == [Edge("a", "x", 7.0)]

    def test_same_id_both_sides_is_fine(self):
        # Anonymised datasets may reuse raw ids; sides must not collapse.
        edges = [Edge("e1", "e1", 2.0), Edge("e1", "e2", 1.0)]
        result = networkx_matching(edges)
        assert _is_valid_matching(result)
        assert len(result) == 1


class TestDispatch:
    def test_match_by_name(self):
        edges = [Edge("a", "x", 1.0)]
        for name in ("greedy", "hungarian", "networkx"):
            assert match(edges, name) == [Edge("a", "x", 1.0)]

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError):
            match([], "magic")

    def test_all_matchers_agree_on_separable(self):
        """When true pairs dominate, all three matchers select them."""
        edges = []
        for k in range(6):
            edges.append(Edge(f"l{k}", f"r{k}", 100.0 + k))
            edges.append(Edge(f"l{k}", f"r{(k + 1) % 6}", 1.0))
        expected = {(f"l{k}", f"r{k}") for k in range(6)}
        for matcher in ALL_MATCHERS:
            got = {(e.left, e.right) for e in matcher(edges)}
            assert got == expected

"""Unit tests for mobility histories."""

import numpy as np
import pytest

from repro.core.history import MobilityHistory, build_histories
from repro.geo import CellId
from repro.temporal import Windowing


@pytest.fixture()
def windowing() -> Windowing:
    return Windowing(origin=0.0, width_seconds=900.0)


def _history(windowing, rows, storage_level=16, entity="e"):
    """rows: list of (timestamp, lat, lng)."""
    array = np.asarray(rows, dtype=np.float64)
    return MobilityHistory.from_columns(
        entity, array[:, 0], array[:, 1], array[:, 2], windowing, storage_level
    )


class TestConstruction:
    def test_windows_and_counts(self, windowing):
        history = _history(
            windowing,
            [
                (0.0, 37.77, -122.42),
                (100.0, 37.77, -122.42),
                (950.0, 37.78, -122.41),
            ],
        )
        assert history.windows() == [0, 1]
        assert history.num_records == 3

    def test_same_cell_counted(self, windowing):
        history = _history(
            windowing, [(0.0, 37.77, -122.42), (10.0, 37.77, -122.42)]
        )
        counts = history.counts_in_window(0, 16)
        assert sum(counts.values()) == 2
        assert len(counts) == 1

    def test_record_before_origin_raises(self, windowing):
        with pytest.raises(ValueError):
            _history(windowing, [(-1.0, 37.0, -122.0)])

    def test_empty_history(self, windowing):
        history = MobilityHistory.from_columns(
            "empty", np.array([]), np.array([]), np.array([]), windowing, 16
        )
        assert history.windows() == []
        assert history.num_records == 0
        assert history.num_bins(12) == 0

    def test_repr(self, windowing):
        history = _history(windowing, [(0.0, 37.0, -122.0)])
        assert "records=1" in repr(history)


class TestBins:
    def test_bins_at_storage_level(self, windowing):
        history = _history(windowing, [(0.0, 37.77, -122.42)], storage_level=14)
        bins = history.bins(14)
        assert 0 in bins
        assert len(bins[0]) == 1
        assert CellId(bins[0][0]).level() == 14

    def test_bins_rebinned_coarser(self, windowing):
        history = _history(
            windowing,
            [(0.0, 37.77, -122.42), (10.0, 37.7701, -122.4201)],
            storage_level=20,
        )
        fine = history.bins(20)[0]
        coarse = history.bins(8)[0]
        assert len(coarse) <= len(fine)
        for cell in coarse:
            assert CellId(cell).level() == 8

    def test_bins_finer_than_storage_raises(self, windowing):
        history = _history(windowing, [(0.0, 37.0, -122.0)], storage_level=12)
        with pytest.raises(ValueError):
            history.bins(13)

    def test_bins_cached(self, windowing):
        history = _history(windowing, [(0.0, 37.0, -122.0)])
        assert history.bins(10) is history.bins(10)

    def test_num_bins_counts_distinct_cells_per_window(self, windowing):
        history = _history(
            windowing,
            [
                (0.0, 37.77, -122.42),
                (10.0, 37.80, -122.20),  # different cell, same window
                (950.0, 37.77, -122.42),
            ],
        )
        assert history.num_bins(12) == 3

    def test_rebinned_parent_contains_children(self, windowing):
        history = _history(
            windowing, [(0.0, 37.77, -122.42), (20.0, 37.772, -122.421)], storage_level=18
        )
        for coarse in history.bins(10)[0]:
            children = [
                fine
                for fine in history.bins(18)[0]
                if CellId(coarse).contains(CellId(fine))
            ]
            assert children


class TestDominatingCell:
    def test_dominating_majority(self, windowing):
        # Two records in cell A, one in distant cell B within window range.
        history = _history(
            windowing,
            [
                (0.0, 37.77, -122.42),
                (950.0, 37.77, -122.42),
                (1900.0, 37.90, -122.10),
            ],
        )
        dominating = history.dominating_cell(0, 3, 12)
        expected = CellId.from_degrees(37.77, -122.42, 12).id
        assert dominating == expected

    def test_dominating_empty_range_is_none(self, windowing):
        history = _history(windowing, [(0.0, 37.0, -122.0)])
        assert history.dominating_cell(5, 10, 12) is None

    def test_dominating_at_coarser_level_aggregates(self, windowing):
        # Two nearby cells at level 16 merge into one at level 8, beating a
        # single record elsewhere.
        history = _history(
            windowing,
            [
                (0.0, 37.7700, -122.4200),
                (100.0, 37.7703, -122.4203),
                (200.0, 37.5, -122.0),
            ],
        )
        coarse = history.dominating_cell(0, 1, 8)
        assert coarse == CellId.from_degrees(37.77, -122.42, 8).id

    def test_tree_cached_per_level(self, windowing):
        history = _history(windowing, [(0.0, 37.0, -122.0)])
        assert history.tree(12) is history.tree(12)
        assert history.tree() is history.tree(16)


class TestBuildHistories:
    def test_builds_all_entities(self, tiny_dataset):
        windowing = Windowing(origin=tiny_dataset.time_range()[0], width_seconds=900.0)
        histories = build_histories(tiny_dataset, windowing, 14)
        assert set(histories) == set(tiny_dataset.entities)
        for entity, history in histories.items():
            assert history.num_records == tiny_dataset.record_count(entity)

    def test_subset_of_entities(self, tiny_dataset):
        windowing = Windowing(origin=tiny_dataset.time_range()[0], width_seconds=900.0)
        histories = build_histories(tiny_dataset, windowing, 14, entities=["a", "b"])
        assert set(histories) == {"a", "b"}

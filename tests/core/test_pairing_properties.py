"""Property-based tests for pairing invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pairing import all_pairs, mfn_pairs, mnn_pairs

cells_strategy = st.lists(
    st.integers(min_value=0, max_value=1000), min_size=1, max_size=8, unique=True
)


def metric(a: int, b: int) -> float:
    return float(abs(a - b))


@given(cells_u=cells_strategy, cells_v=cells_strategy)
@settings(max_examples=200, deadline=None)
def test_mnn_invariants(cells_u, cells_v):
    """MNN: min-size pair count, no bin reuse, pairs subset of product."""
    pairs = mnn_pairs(cells_u, cells_v, metric)
    assert len(pairs) == min(len(cells_u), len(cells_v))
    assert len({p[0] for p in pairs}) == len(pairs)
    assert len({p[1] for p in pairs}) == len(pairs)
    for cu, cv, d in pairs:
        assert cu in cells_u and cv in cells_v
        assert d == metric(cu, cv)


@given(cells_u=cells_strategy, cells_v=cells_strategy)
@settings(max_examples=200, deadline=None)
def test_mnn_first_pair_is_global_minimum(cells_u, cells_v):
    """The first greedy pick is the globally closest pair."""
    pairs = mnn_pairs(cells_u, cells_v, metric)
    global_min = min(metric(a, b) for a in cells_u for b in cells_v)
    assert min(d for _, _, d in pairs) == global_min


@given(cells_u=cells_strategy, cells_v=cells_strategy)
@settings(max_examples=200, deadline=None)
def test_mfn_first_pair_is_global_maximum(cells_u, cells_v):
    pairs = mfn_pairs(cells_u, cells_v, metric)
    global_max = max(metric(a, b) for a in cells_u for b in cells_v)
    assert max(d for _, _, d in pairs) == global_max


@given(cells_u=cells_strategy, cells_v=cells_strategy)
@settings(max_examples=200, deadline=None)
def test_mnn_total_distance_bounded_by_mfn(cells_u, cells_v):
    """Summed MNN distance never exceeds summed MFN distance."""
    nearest = sum(d for _, _, d in mnn_pairs(cells_u, cells_v, metric))
    furthest = sum(d for _, _, d in mfn_pairs(cells_u, cells_v, metric))
    assert nearest <= furthest + 1e-9


@given(cells_u=cells_strategy, cells_v=cells_strategy)
@settings(max_examples=100, deadline=None)
def test_all_pairs_is_cartesian(cells_u, cells_v):
    pairs = all_pairs(cells_u, cells_v, metric)
    assert len(pairs) == len(cells_u) * len(cells_v)
    assert {(a, b) for a, b, _ in pairs} == {
        (a, b) for a in cells_u for b in cells_v
    }


@given(cells=cells_strategy)
@settings(max_examples=100, deadline=None)
def test_self_pairing_is_identity(cells):
    """MNN of a set against itself pairs every element with itself."""
    pairs = mnn_pairs(cells, cells, metric)
    assert all(d == 0.0 for _, _, d in pairs)
    assert {p[0] for p in pairs} == set(cells)

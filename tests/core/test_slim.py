"""Unit and small integration tests for the SLIM pipeline (Alg. 1)."""

import pytest

from repro.core.slim import SlimConfig, SlimLinker
from repro.eval import precision_recall_f1
from repro.lsh import LshConfig


class TestConfig:
    def test_default_storage_level_is_similarity_level(self):
        config = SlimConfig()
        assert config.resolved_storage_level() == 12

    def test_storage_level_covers_lsh(self):
        config = SlimConfig(lsh=LshConfig(spatial_level=16))
        assert config.resolved_storage_level() == 16

    def test_explicit_storage_level_wins(self):
        config = SlimConfig(storage_level=20)
        assert config.resolved_storage_level() == 20

    def test_invalid_threshold_method(self):
        with pytest.raises(ValueError):
            SlimConfig(threshold_method="coin_flip")


class TestPipelineStages:
    def test_windowing_covers_both_datasets(self, cab_pair):
        linker = SlimLinker()
        windowing, total = linker.build_windowing(cab_pair.left, cab_pair.right)
        for dataset in (cab_pair.left, cab_pair.right):
            start, end = dataset.time_range()
            assert windowing.index_of(start) >= 0
            assert windowing.index_of(end) < total

    def test_brute_force_candidates_are_all_pairs(self, cab_pair):
        linker = SlimLinker(SlimConfig())
        windowing, total = linker.build_windowing(cab_pair.left, cab_pair.right)
        _, _, lh, rh = linker.build_corpora(cab_pair.left, cab_pair.right, windowing)
        candidates = linker.select_candidates(lh, rh, total)
        assert len(candidates) == len(lh) * len(rh)

    def test_lsh_candidates_are_subset(self, cab_pair):
        config = SlimConfig(lsh=LshConfig(threshold=0.5, step_windows=8, spatial_level=14))
        linker = SlimLinker(config)
        windowing, total = linker.build_windowing(cab_pair.left, cab_pair.right)
        _, _, lh, rh = linker.build_corpora(cab_pair.left, cab_pair.right, windowing)
        candidates = linker.select_candidates(lh, rh, total)
        assert len(candidates) <= len(lh) * len(rh)
        for left, right in candidates:
            assert left in lh and right in rh


class TestEndToEnd:
    def test_brute_force_high_accuracy(self, cab_pair):
        result = SlimLinker(SlimConfig()).link(cab_pair.left, cab_pair.right)
        quality = precision_recall_f1(result.links, cab_pair.ground_truth)
        assert quality.precision >= 0.8
        assert quality.recall >= 0.8

    def test_result_invariants(self, cab_pair):
        result = SlimLinker(SlimConfig()).link(cab_pair.left, cab_pair.right)
        # one-to-one
        assert len(set(result.links.values())) == len(result.links)
        # links are a subset of matched edges at/above the threshold
        matched = {(e.left, e.right) for e in result.matched_edges}
        for pair in result.links.items():
            assert pair in matched
        for edge in result.matched_edges:
            if edge.weight >= result.threshold.threshold:
                assert result.links.get(edge.left) == edge.right
        # all positive candidate edges scored positive
        assert all(e.weight > 0 for e in result.edges)

    def test_link_scores_accessor(self, cab_pair):
        result = SlimLinker(SlimConfig()).link(cab_pair.left, cab_pair.right)
        scores = result.link_scores
        assert set(scores) == set(result.links.items())
        assert all(v >= result.threshold.threshold for v in scores.values())

    def test_timings_use_canonical_stage_names(self, cab_pair):
        result = SlimLinker(SlimConfig()).link(cab_pair.left, cab_pair.right)
        for stage in ("prepare", "candidates", "scoring", "matching", "threshold"):
            assert stage in result.timings
        assert result.runtime_seconds > 0

    def test_lsh_preserves_most_f1(self, cab_pair):
        brute = SlimLinker(SlimConfig()).link(cab_pair.left, cab_pair.right)
        lsh = SlimLinker(
            SlimConfig(lsh=LshConfig(threshold=0.4, step_windows=8, spatial_level=14))
        ).link(cab_pair.left, cab_pair.right)
        f1_brute = precision_recall_f1(brute.links, cab_pair.ground_truth).f1
        f1_lsh = precision_recall_f1(lsh.links, cab_pair.ground_truth).f1
        assert lsh.stats.bin_comparisons <= brute.stats.bin_comparisons
        assert f1_lsh >= 0.5 * f1_brute

    def test_threshold_none_links_every_match(self, cab_pair):
        result = SlimLinker(SlimConfig(threshold_method="none")).link(
            cab_pair.left, cab_pair.right
        )
        assert len(result.links) == len(result.matched_edges)

    def test_matching_methods_comparable(self, cab_pair):
        greedy = SlimLinker(SlimConfig(matching="greedy")).link(
            cab_pair.left, cab_pair.right
        )
        exact = SlimLinker(SlimConfig(matching="hungarian")).link(
            cab_pair.left, cab_pair.right
        )
        f1_greedy = precision_recall_f1(greedy.links, cab_pair.ground_truth).f1
        f1_exact = precision_recall_f1(exact.links, cab_pair.ground_truth).f1
        assert abs(f1_greedy - f1_exact) < 0.25

    def test_sparse_world_still_links(self, sm_pair):
        result = SlimLinker(SlimConfig()).link(sm_pair.left, sm_pair.right)
        quality = precision_recall_f1(result.links, sm_pair.ground_truth)
        # Sparse evidence: expect moderate but clearly non-random quality.
        assert quality.precision > 0.5
        assert quality.recall > 0.3

    def test_otsu_threshold_method(self, cab_pair):
        result = SlimLinker(SlimConfig(threshold_method="otsu")).link(
            cab_pair.left, cab_pair.right
        )
        assert result.threshold.method in ("otsu", "otsu-degenerate")

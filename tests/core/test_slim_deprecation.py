"""The deprecated SlimLinker/SlimConfig shims warn exactly once per
process."""

import warnings

import pytest

import repro.core.slim as slim
from repro.core.slim import SlimConfig, SlimLinker


@pytest.fixture()
def fresh_warning_state():
    """Reset the once-per-process guard around a test (other tests and
    fixtures may already have constructed a shim in this process)."""
    saved = set(slim._DEPRECATION_WARNED)
    slim._DEPRECATION_WARNED.clear()
    yield
    slim._DEPRECATION_WARNED.clear()
    slim._DEPRECATION_WARNED.update(saved)


class TestDeprecationWarnings:
    def test_slim_config_warns_on_first_use(self, fresh_warning_state):
        with pytest.warns(DeprecationWarning, match="SlimConfig"):
            SlimConfig()

    def test_slim_linker_warns_on_first_use(self, fresh_warning_state):
        with pytest.warns(DeprecationWarning, match="SlimLinker"):
            SlimLinker()

    def test_each_shim_warns_exactly_once(self, fresh_warning_state):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            SlimConfig()
            SlimLinker()
            SlimConfig(matching="hungarian")
            SlimLinker(SlimConfig())
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        messages = sorted(str(w.message).split()[0] for w in deprecations)
        assert messages == ["SlimConfig", "SlimLinker"]

    def test_warning_names_replacement(self, fresh_warning_state):
        with pytest.warns(DeprecationWarning, match="LinkageConfig"):
            SlimConfig()

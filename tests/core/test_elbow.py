"""Unit tests for Kneedle elbow detection."""

import numpy as np
import pytest

from repro.core.elbow import kneedle_index, kneedle_x


class TestKneedle:
    def test_convex_decreasing_one_over_x(self):
        x = np.linspace(1, 10, 50)
        knee = kneedle_x(x, 1 / x, curve="convex", direction="decreasing")
        assert 1.5 < knee < 4.0

    def test_concave_increasing_sqrt(self):
        x = np.linspace(0, 10, 50)
        knee = kneedle_x(x, np.sqrt(x), curve="concave", direction="increasing")
        assert 1.0 < knee < 5.0

    def test_convex_increasing_square(self):
        x = np.linspace(0, 10, 50)
        knee = kneedle_x(x, x**2, curve="convex", direction="increasing")
        assert 3.0 < knee < 8.0

    def test_concave_decreasing(self):
        x = np.linspace(0, 10, 50)
        y = 100 - x**2
        knee = kneedle_x(x, y, curve="concave", direction="decreasing")
        assert 3.0 < knee < 8.0

    def test_piecewise_flat_knee(self):
        """Steep drop then flat: knee sits at the bend."""
        x = np.arange(20, dtype=float)
        y = np.concatenate([np.linspace(100, 10, 5), np.full(15, 9.0)])
        knee = kneedle_index(x, y, curve="convex", direction="decreasing")
        assert 3 <= knee <= 6

    def test_constant_curve_returns_zero(self):
        assert kneedle_index([1, 2, 3, 4], [5, 5, 5, 5], "convex", "decreasing") == 0

    def test_short_input_returns_zero(self):
        assert kneedle_index([1, 2], [5, 3], "convex", "decreasing") == 0

    def test_invalid_curve(self):
        with pytest.raises(ValueError):
            kneedle_index([1, 2, 3], [1, 2, 3], curve="wiggly", direction="increasing")

    def test_invalid_direction(self):
        with pytest.raises(ValueError):
            kneedle_index([1, 2, 3], [1, 2, 3], curve="convex", direction="sideways")

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            kneedle_index([1, 2, 3], [1, 2], "convex", "decreasing")

    def test_insensitive_to_scale(self):
        x = np.linspace(1, 10, 40)
        y = 1 / x
        a = kneedle_index(x, y, "convex", "decreasing")
        b = kneedle_index(x * 1000, y * 1e6, "convex", "decreasing")
        assert a == b

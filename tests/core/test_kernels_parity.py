"""Backend parity suite: the vectorized batch kernel vs. the scalar oracle.

The ``backend="numpy"`` kernel (:mod:`repro.core.kernels`) re-implements
Eq. 2 + Alg. 1 over array views; the ``backend="python"`` loop stays the
verification oracle.  These tests pin the contract: identical scores
(within 1e-9), identical instrumentation counters, identical greedy
pairings under ties, and identical final links end-to-end — across every
pairing / MFN / IDF / normalisation combination and the degenerate window
shapes.
"""

import numpy as np
import pytest

from repro.core.corpus import HistoryCorpus
from repro.core.history import MobilityHistory
from repro.core.kernels import greedy_select_batch, score_pairs_batch
from repro.core.pairing import greedy_index_pairs
from repro.core.similarity import SimilarityConfig, SimilarityEngine
from repro.core.slim import SlimConfig, SlimLinker
from repro.data.records import LocationDataset, Record
from repro.temporal import Windowing

WINDOWING = Windowing(0.0, 900.0)
LEVEL = 12


def _random_histories(prefix, count, rng, sparse=False):
    histories = {}
    for index in range(count):
        records = int(rng.integers(2, 12 if sparse else 50))
        span = 900.0 * (80 if sparse else 30)
        timestamps = rng.uniform(0.0, span, records)
        lats = 37.7 + rng.normal(0.0, 0.4 if sparse else 0.12, records)
        lngs = -122.4 + rng.normal(0.0, 0.4 if sparse else 0.12, records)
        entity = f"{prefix}{index}"
        histories[entity] = MobilityHistory.from_columns(
            entity, timestamps, lats, lngs, WINDOWING, LEVEL
        )
    return histories


def _score_both(left, right, config, pairs):
    """(python scores+stats, numpy scores+stats) for the same inputs."""
    scalar = SimilarityEngine(
        HistoryCorpus(left, LEVEL),
        HistoryCorpus(right, LEVEL),
        config.without(backend="python"),
    )
    vectorized = SimilarityEngine(
        HistoryCorpus(left, LEVEL),
        HistoryCorpus(right, LEVEL),
        config.without(backend="numpy"),
    )
    scalar_scores = [scalar.score(u, v) for u, v in pairs]
    vector_scores = vectorized.score_batch(pairs)
    return scalar_scores, scalar.stats, vector_scores, vectorized.stats


def _assert_scores_match(scalar_scores, vector_scores):
    for expected, got in zip(scalar_scores, vector_scores):
        assert got == pytest.approx(expected, rel=1e-9, abs=1e-9)


def _assert_stats_match(scalar_stats, vector_stats):
    assert scalar_stats.pairs_scored == vector_stats.pairs_scored
    assert scalar_stats.bin_comparisons == vector_stats.bin_comparisons
    assert scalar_stats.common_windows == vector_stats.common_windows
    assert scalar_stats.alibi_bin_pairs == vector_stats.alibi_bin_pairs
    assert scalar_stats.alibi_entity_pairs == vector_stats.alibi_entity_pairs


CONFIG_GRID = [
    SimilarityConfig(),
    SimilarityConfig(pairing="all_pairs"),
    SimilarityConfig(use_mfn=False),
    SimilarityConfig(use_idf=False),
    SimilarityConfig(use_normalization=False),
    SimilarityConfig(pairing="all_pairs", use_idf=False),
    SimilarityConfig(use_mfn=False, use_normalization=False, b=1.0),
    SimilarityConfig(use_idf=False, use_mfn=False, pairing="all_pairs"),
]


class TestScoreParity:
    @pytest.mark.parametrize("config", CONFIG_GRID, ids=lambda c: (
        f"{c.pairing}-mfn{int(c.use_mfn)}-idf{int(c.use_idf)}"
        f"-norm{int(c.use_normalization)}"
    ))
    def test_dense_world(self, config):
        rng = np.random.default_rng(101)
        left = _random_histories("l", 10, rng)
        right = _random_histories("r", 10, rng)
        pairs = [(u, v) for u in left for v in right]
        s_scores, s_stats, v_scores, v_stats = _score_both(
            left, right, config, pairs
        )
        _assert_scores_match(s_scores, v_scores)
        _assert_stats_match(s_stats, v_stats)

    @pytest.mark.parametrize("config", CONFIG_GRID[:4], ids=lambda c: (
        f"{c.pairing}-mfn{int(c.use_mfn)}"
    ))
    def test_sparse_world_with_alibis(self, config):
        """Wide scatter guarantees alibi (beyond-runaway) bin pairs, so the
        MFN negative pass and alibi counters are actually exercised."""
        rng = np.random.default_rng(202)
        left = _random_histories("l", 8, rng, sparse=True)
        right = _random_histories("r", 8, rng, sparse=True)
        pairs = [(u, v) for u in left for v in right]
        s_scores, s_stats, v_scores, v_stats = _score_both(
            left, right, config, pairs
        )
        _assert_scores_match(s_scores, v_scores)
        _assert_stats_match(s_stats, v_stats)
        if config.pairing == "mnn" and config.use_mfn:
            assert s_stats.alibi_bin_pairs > 0  # the scenario is non-trivial

    def test_single_pair_dispatch_matches_batch(self):
        rng = np.random.default_rng(303)
        left = _random_histories("l", 4, rng)
        right = _random_histories("r", 4, rng)
        config = SimilarityConfig()
        engine = SimilarityEngine(
            HistoryCorpus(left, LEVEL), HistoryCorpus(right, LEVEL), config
        )
        pairs = [(u, v) for u in left for v in right]
        batched = engine.score_batch(pairs)
        for pair, expected in zip(pairs, batched):
            assert engine.score(*pair) == pytest.approx(expected, abs=1e-12)


class TestEdgeCases:
    def _one(self, rows):
        array = np.asarray(rows, dtype=np.float64)
        return MobilityHistory.from_columns(
            "e", array[:, 0], array[:, 1], array[:, 2], WINDOWING, LEVEL
        )

    def _corpora(self, left_rows, right_rows):
        background = [(9_000_000.0, 10.0, 10.0)]
        left = {
            "u": MobilityHistory.from_columns(
                "u", *np.asarray(left_rows, dtype=np.float64).T, WINDOWING, LEVEL
            ),
            "bgL": MobilityHistory.from_columns(
                "bgL", *np.asarray(background, dtype=np.float64).T, WINDOWING, LEVEL
            ),
        }
        right = {
            "v": MobilityHistory.from_columns(
                "v", *np.asarray(right_rows, dtype=np.float64).T, WINDOWING, LEVEL
            ),
            "bgR": MobilityHistory.from_columns(
                "bgR", *np.asarray(background, dtype=np.float64).T, WINDOWING, LEVEL
            ),
        }
        return left, right

    def test_no_common_windows(self):
        left, right = self._corpora(
            [(0.0, 37.77, -122.42)], [(5000.0, 37.77, -122.42)]
        )
        for backend in ("python", "numpy"):
            engine = SimilarityEngine(
                HistoryCorpus(left, LEVEL),
                HistoryCorpus(right, LEVEL),
                SimilarityConfig(backend=backend),
            )
            score, stats = engine.score_with_stats("u", "v")
            assert score == 0.0
            assert stats.common_windows == 0
            assert stats.bin_comparisons == 0

    def test_single_bin_each_side(self):
        left, right = self._corpora(
            [(0.0, 37.77, -122.42)], [(10.0, 37.80, -122.40)]
        )
        s_scores, s_stats, v_scores, v_stats = _score_both(
            left, right, SimilarityConfig(), [("u", "v")]
        )
        _assert_scores_match(s_scores, v_scores)
        _assert_stats_match(s_stats, v_stats)
        assert s_stats.bin_comparisons == 1

    def test_many_cells_one_window(self):
        """A single window with many distinct cells on both sides drives
        the padded matrix buckets (and the MFN pass) hard."""
        rng = np.random.default_rng(404)
        left_rows = [
            (float(rng.uniform(0, 890)), 37.7 + 0.02 * k, -122.4 - 0.015 * k)
            for k in range(9)
        ]
        right_rows = [
            (float(rng.uniform(0, 890)), 37.72 + 0.018 * k, -122.38 - 0.02 * k)
            for k in range(7)
        ]
        left, right = self._corpora(left_rows, right_rows)
        for config in (SimilarityConfig(), SimilarityConfig(pairing="all_pairs")):
            s_scores, s_stats, v_scores, v_stats = _score_both(
                left, right, config, [("u", "v")]
            )
            _assert_scores_match(s_scores, v_scores)
            _assert_stats_match(s_stats, v_stats)

    def test_far_apart_single_bins_alibi(self):
        left, right = self._corpora(
            [(0.0, 37.77, -122.42)], [(10.0, 38.50, -121.70)]
        )
        s_scores, s_stats, v_scores, v_stats = _score_both(
            left, right, SimilarityConfig(), [("u", "v")]
        )
        _assert_scores_match(s_scores, v_scores)
        _assert_stats_match(s_stats, v_stats)
        assert v_scores[0] < 0.0
        assert v_stats.alibi_bin_pairs == 1


class TestGreedyTieBreaking:
    """The batched greedy must reproduce the scalar tie-break (stable sort,
    row-major on equal distances) exactly — a pairing flip would silently
    change scores by more than rounding."""

    def test_all_zero_matrix(self):
        matrix = np.zeros((1, 3, 3))
        for reverse in (False, True):
            mask = greedy_select_batch(matrix, reverse)[0]
            scalar = {
                (iu, iv)
                for iu, iv, _ in greedy_index_pairs(matrix[0].tolist(), reverse)
            }
            assert {(i, j) for i, j in zip(*np.nonzero(mask))} == scalar

    @pytest.mark.parametrize("reverse", [False, True])
    def test_tie_heavy_random_matrices(self, reverse):
        rng = np.random.default_rng(7)
        for _ in range(200):
            rows = int(rng.integers(1, 6))
            cols = int(rng.integers(1, 6))
            matrix = rng.choice([0.0, 1.0, 2.0], size=(rows, cols))
            mask = greedy_select_batch(matrix[None], reverse)[0]
            vector = {(i, j) for i, j in zip(*np.nonzero(mask))}
            scalar = {
                (iu, iv)
                for iu, iv, _ in greedy_index_pairs(matrix.tolist(), reverse)
            }
            assert vector == scalar

    @pytest.mark.parametrize("reverse", [False, True])
    def test_vector_shapes_honour_valid_mask(self, reverse):
        """The 1-row/1-column fast path must not select masked entries."""
        distances = np.array([[[5.0, 1.0, 3.0]]])
        valid = np.array([[[True, False, True]]])
        mask = greedy_select_batch(distances, reverse, valid)
        picked = int(np.nonzero(mask.reshape(-1))[0][0])
        assert picked == (0 if reverse else 2)  # entry 1 is masked out

    @pytest.mark.parametrize("reverse", [False, True])
    def test_padded_buckets_match_unpadded(self, reverse):
        """Validity-masked padding (repeating the last real cell) must not
        change the selection."""
        rng = np.random.default_rng(8)
        for _ in range(100):
            rows = int(rng.integers(2, 6))
            cols = int(rng.integers(2, 6))
            side = 8
            matrix = rng.random((rows, cols)) * 100
            padded = np.empty((side, side))
            padded[:rows, :cols] = matrix
            padded[rows:, :cols] = matrix[rows - 1, :]
            padded[:, cols:] = padded[:, cols - 1 : cols]
            valid = np.zeros((side, side), dtype=bool)
            valid[:rows, :cols] = True
            mask = greedy_select_batch(padded[None], reverse, valid[None])[0]
            vector = {(i, j) for i, j in zip(*np.nonzero(mask))}
            scalar = {
                (iu, iv)
                for iu, iv, _ in greedy_index_pairs(matrix.tolist(), reverse)
            }
            assert vector == scalar


class TestLinkageParity:
    def _dataset(self, name, histories_rng, entities, sparse=False):
        records = []
        for index in range(entities):
            count = int(histories_rng.integers(3, 25))
            timestamps = histories_rng.uniform(0.0, 900.0 * 40, count)
            lats = 37.7 + histories_rng.normal(0.0, 0.2, count)
            lngs = -122.4 + histories_rng.normal(0.0, 0.2, count)
            for t, lat, lng in zip(timestamps, lats, lngs):
                records.append(
                    Record(f"{name}{index}", float(lat), float(lng), float(t))
                )
        return LocationDataset.from_records(records, name=name)

    def test_identical_links_end_to_end(self):
        rng = np.random.default_rng(909)
        left = self._dataset("a", rng, 12)
        right = self._dataset("b", rng, 12)
        results = {}
        for backend in ("python", "numpy"):
            config = SlimConfig(
                similarity=SimilarityConfig(backend=backend),
                threshold_method="two_means",
            )
            results[backend] = SlimLinker(config).link(left, right)
        assert results["python"].links == results["numpy"].links
        assert (
            results["python"].candidate_pairs == results["numpy"].candidate_pairs
        )
        scalar_edges = {
            (e.left, e.right): e.weight for e in results["python"].edges
        }
        vector_edges = {
            (e.left, e.right): e.weight for e in results["numpy"].edges
        }
        assert scalar_edges.keys() == vector_edges.keys()
        for key, weight in scalar_edges.items():
            assert vector_edges[key] == pytest.approx(weight, rel=1e-9, abs=1e-9)


class TestKernelDirect:
    def test_empty_pair_list(self):
        rng = np.random.default_rng(11)
        left = HistoryCorpus(_random_histories("l", 3, rng), LEVEL)
        right = HistoryCorpus(_random_histories("r", 3, rng), LEVEL)
        result = score_pairs_batch(left, right, [], SimilarityConfig())
        assert result.scores.shape == (0,)

    def test_corpus_array_views_mirror_dict_views(self):
        rng = np.random.default_rng(12)
        corpus = HistoryCorpus(_random_histories("l", 5, rng), LEVEL)
        flats = corpus.arrays()
        for entity in corpus.entities:
            annotated = corpus.bins_with_idf(entity)
            directory = corpus.window_index(entity)
            assert sorted(annotated) == directory.windows.tolist()
            for window, offset, count in zip(
                directory.windows.tolist(),
                directory.offsets.tolist(),
                directory.counts.tolist(),
            ):
                cells = flats.cells[offset : offset + count].tolist()
                idf = flats.idf[offset : offset + count].tolist()
                assert [cell for cell, _ in annotated[window]] == cells
                for (_, expected), got in zip(annotated[window], idf):
                    assert got == pytest.approx(expected, abs=1e-12)

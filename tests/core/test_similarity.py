"""Unit tests for the similarity score (Eq. 2) and its engine."""

import numpy as np
import pytest

from repro.core.corpus import HistoryCorpus
from repro.core.history import MobilityHistory
from repro.core.similarity import SimilarityConfig, SimilarityEngine
from repro.temporal import Windowing

WINDOWING = Windowing(0.0, 900.0)
LEVEL = 12

# Locations ~3.3 km apart (same window -> positive proximity at default R)
SF_A = (37.7749, -122.4194)
SF_B = (37.8000, -122.4000)
# ~20 km away: different cell well beyond the cell-distance clamp but still
# inside the 30 km runaway -> reduced, positive proximity.
SF_MID = (37.9200, -122.2400)
# ~90 km away: beyond the 30 km runaway at 15-minute windows -> alibi.
FAR = (38.5000, -121.7000)


def _history(entity, rows):
    array = np.asarray(rows, dtype=np.float64)
    return MobilityHistory.from_columns(
        entity, array[:, 0], array[:, 1], array[:, 2], WINDOWING, LEVEL
    )


# A far-away, far-future record keeping corpus IDF informative: with a
# second entity per side, a bin unique to u/v has idf = ln(2) > 0.  (With a
# single-entity corpus every bin has df = |U| = 1, so idf = 0 and every
# score degenerates to 0 — exactly what Eq. 3 prescribes.)
BACKGROUND = [(9_000_000.0, 10.0, 10.0)]


def _engine(left_rows, right_rows, config=None, extra_left=None, extra_right=None):
    """Build a two-corpus engine; extra_* add more entities for IDF realism."""
    left = {"u": _history("u", left_rows), "bgL": _history("bgL", BACKGROUND)}
    right = {"v": _history("v", right_rows), "bgR": _history("bgR", BACKGROUND)}
    for k, rows in enumerate(extra_left or []):
        left[f"lx{k}"] = _history(f"lx{k}", rows)
    for k, rows in enumerate(extra_right or []):
        right[f"rx{k}"] = _history(f"rx{k}", rows)
    config = config or SimilarityConfig()
    return SimilarityEngine(
        HistoryCorpus(left, LEVEL), HistoryCorpus(right, LEVEL), config
    )


class TestConfig:
    def test_defaults_match_paper(self):
        config = SimilarityConfig()
        assert config.window_width_minutes == 15.0
        assert config.spatial_level == 12
        assert config.b == 0.5
        assert config.runaway_meters == pytest.approx(30_000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SimilarityConfig(window_width_minutes=0)
        with pytest.raises(ValueError):
            SimilarityConfig(b=1.5)
        with pytest.raises(ValueError):
            SimilarityConfig(pairing="nearest")
        with pytest.raises(ValueError):
            SimilarityConfig(spatial_level=40)

    def test_without_creates_modified_copy(self):
        config = SimilarityConfig()
        ablated = config.without(use_idf=False)
        assert not ablated.use_idf
        assert config.use_idf

    def test_level_mismatch_raises(self):
        history = {"u": _history("u", [(0.0, *SF_A)])}
        corpus = HistoryCorpus(history, 10)
        with pytest.raises(ValueError):
            SimilarityEngine(corpus, corpus, SimilarityConfig(spatial_level=12))


class TestScoreProperties:
    def test_same_cell_same_window_positive(self):
        engine = _engine([(0.0, *SF_A)], [(10.0, *SF_A)])
        assert engine.score("u", "v") > 0.0

    def test_temporal_asynchrony_not_penalised(self):
        """Records in disjoint windows contribute nothing — not a penalty."""
        engine = _engine(
            [(0.0, *SF_A), (1000.0, *SF_A)],
            [(10.0, *SF_A), (2000.0, *SF_A)],  # window 2 only on right
        )
        engine_sync = _engine(
            [(0.0, *SF_A), (1000.0, *SF_A)],
            [(10.0, *SF_A)],
        )
        # The extra asynchronous right-side record changes only the length
        # norm, never subtracts matched evidence.
        assert engine.score("u", "v") > 0.0
        assert engine_sync.score("u", "v") > 0.0

    def test_alibi_penalises(self):
        close = _engine([(0.0, *SF_A)], [(10.0, *SF_A)])
        alibi = _engine([(0.0, *SF_A)], [(10.0, *FAR)])
        assert alibi.score("u", "v") < 0.0 < close.score("u", "v")

    def test_mfn_catches_hidden_alibi(self):
        """Paper's example: v visits a near cell AND a far (alibi) cell in
        the same window.  MNN alone misses the alibi; MFN subtracts it."""
        with_mfn = _engine(
            [(0.0, *SF_A)], [(10.0, *SF_A), (20.0, *FAR)]
        )
        without_mfn = _engine(
            [(0.0, *SF_A)],
            [(10.0, *SF_A), (20.0, *FAR)],
            config=SimilarityConfig(use_mfn=False),
        )
        assert with_mfn.score("u", "v") < without_mfn.score("u", "v")

    def test_closer_cells_score_higher(self):
        near = _engine([(0.0, *SF_A)], [(10.0, *SF_A)])
        farther = _engine([(0.0, *SF_A)], [(10.0, *SF_MID)])
        assert near.score("u", "v") > farther.score("u", "v")

    def test_idf_awards_unique_bins(self):
        """A match in a bin shared by many entities is worth less than a
        match in a bin unique to the pair."""
        crowd = [[(0.0, *SF_A)] for _ in range(8)]
        crowded = _engine(
            [(0.0, *SF_A)], [(10.0, *SF_A)], extra_left=crowd, extra_right=crowd
        )
        empty_crowd = [[(5000.0, *SF_B)] for _ in range(8)]
        unique = _engine(
            [(0.0, *SF_A)], [(10.0, *SF_A)], extra_left=empty_crowd, extra_right=empty_crowd
        )
        assert unique.score("u", "v") > crowded.score("u", "v")

    def test_no_idf_ablation_ignores_frequency(self):
        config = SimilarityConfig(use_idf=False)
        crowd = [[(0.0, *SF_A)] for _ in range(8)]
        crowded = _engine(
            [(0.0, *SF_A)], [(10.0, *SF_A)],
            config=config, extra_left=crowd, extra_right=crowd,
        )
        empty_crowd = [[(5000.0, *SF_B)] for _ in range(8)]
        unique = _engine(
            [(0.0, *SF_A)], [(10.0, *SF_A)],
            config=config, extra_left=empty_crowd, extra_right=empty_crowd,
        )
        # Without IDF the crowd cannot matter (up to length-norm equality).
        assert crowded.score("u", "v") == pytest.approx(unique.score("u", "v"))

    def test_normalization_shrinks_long_histories(self):
        """With b=1, a history with many bins contributes proportionally
        less per bin than the corpus average."""
        long_rows = [(900.0 * k, *SF_A) for k in range(10)]
        short_rows = [(0.0, *SF_A)]
        histories_left = {
            "long": _history("long", long_rows),
            "short": _history("short", short_rows),
        }
        histories_right = {
            "v": _history("v", long_rows),
            "bgR": _history("bgR", BACKGROUND),
        }
        engine = SimilarityEngine(
            HistoryCorpus(histories_left, LEVEL),
            HistoryCorpus(histories_right, LEVEL),
            SimilarityConfig(b=1.0),
        )
        engine_no_norm = SimilarityEngine(
            HistoryCorpus(histories_left, LEVEL),
            HistoryCorpus(histories_right, LEVEL),
            SimilarityConfig(use_normalization=False),
        )
        assert engine.score("long", "v") < engine_no_norm.score("long", "v")

    def test_b_zero_equals_no_normalization(self):
        rows_u, rows_v = [(0.0, *SF_A)], [(10.0, *SF_A), (950.0, *SF_B)]
        b_zero = _engine(rows_u, rows_v, config=SimilarityConfig(b=0.0))
        no_norm = _engine(rows_u, rows_v, config=SimilarityConfig(use_normalization=False))
        assert b_zero.score("u", "v") == pytest.approx(no_norm.score("u", "v"))

    def test_all_pairs_overcounts_relative_to_mnn(self):
        """All-pairs counts every combination, MNN one per bin: with two
        same-cell bins the all-pairs score is strictly larger."""
        rows_u = [(0.0, *SF_A), (10.0, *SF_B)]
        rows_v = [(20.0, *SF_A), (30.0, *SF_B)]
        mnn = _engine(rows_u, rows_v)
        ap = _engine(rows_u, rows_v, config=SimilarityConfig(pairing="all_pairs"))
        assert ap.score("u", "v") > mnn.score("u", "v")

    def test_score_is_symmetric_for_symmetric_corpora(self):
        rows_a, rows_b = [(0.0, *SF_A)], [(10.0, *SF_B)]
        forward = _engine(rows_a, rows_b).score("u", "v")
        backward = _engine(rows_b, rows_a).score("u", "v")
        assert forward == pytest.approx(backward)

    def test_no_common_windows_scores_zero(self):
        engine = _engine([(0.0, *SF_A)], [(5000.0, *SF_A)])
        assert engine.score("u", "v") == 0.0


class TestStats:
    def test_bin_comparisons_counted(self):
        engine = _engine([(0.0, *SF_A), (10.0, *SF_B)], [(20.0, *SF_A)])
        _, stats = engine.score_with_stats("u", "v")
        assert stats.bin_comparisons == 2  # 2 x 1 cells in the one window
        assert stats.common_windows == 1

    def test_alibi_counted(self):
        engine = _engine([(0.0, *SF_A)], [(10.0, *FAR)])
        _, stats = engine.score_with_stats("u", "v")
        assert stats.alibi_bin_pairs == 1
        assert stats.alibi_entity_pairs == 1

    def test_stats_accumulate(self):
        engine = _engine([(0.0, *SF_A)], [(10.0, *SF_A)])
        engine.score("u", "v")
        engine.score("u", "v")
        assert engine.stats.pairs_scored == 2

    def test_reset_stats(self):
        engine = _engine([(0.0, *SF_A)], [(10.0, *SF_A)])
        engine.score("u", "v")
        old = engine.reset_stats()
        assert old.pairs_scored == 1
        assert engine.stats.pairs_scored == 0

    def test_distance_cache_grows(self):
        engine = _engine(
            [(0.0, *SF_A)], [(10.0, *SF_B)],
            config=SimilarityConfig(backend="python"),
        )
        engine.score("u", "v")
        assert engine.distance_cache_size >= 1

    def test_distance_same_cell_zero_without_cache(self):
        engine = _engine([(0.0, *SF_A)], [(10.0, *SF_A)])
        cell = engine.left.history("u").bins(LEVEL)[0][0]
        assert engine.distance(cell, cell) == 0.0


class TestDistanceCacheLru:
    """The scalar backend's distance cache is a bounded LRU with counters."""

    def test_hit_and_miss_counters(self):
        engine = _engine(
            [(0.0, *SF_A)], [(10.0, *SF_B)],
            config=SimilarityConfig(backend="python"),
        )
        engine.score("u", "v")
        assert engine.stats.distance_cache_misses >= 1
        assert engine.stats.distance_cache_hits == 0
        engine.score("u", "v")  # same pair again: all lookups now hit
        assert engine.stats.distance_cache_hits >= 1

    def test_cap_evicts_least_recently_used(self):
        engine = _engine(
            [(0.0, *SF_A)], [(10.0, *SF_B)],
            config=SimilarityConfig(backend="python", distance_cache_cap=2),
        )
        cells = [
            MobilityHistory.from_columns(
                "c", np.array([0.0]), np.array([lat]), np.array([-122.0]),
                WINDOWING, LEVEL,
            ).bins(LEVEL)[0][0]
            for lat in (37.0, 37.5, 38.0, 38.5)
        ]
        engine.distance(cells[0], cells[1])
        engine.distance(cells[0], cells[2])
        engine.distance(cells[0], cells[3])  # evicts the (0, 1) entry
        assert engine.distance_cache_size == 2
        misses = engine.stats.distance_cache_misses
        engine.distance(cells[0], cells[1])  # must recompute
        assert engine.stats.distance_cache_misses == misses + 1

    def test_numpy_backend_never_touches_cache(self):
        engine = _engine([(0.0, *SF_A)], [(10.0, *SF_B)])
        engine.score("u", "v")
        assert engine.distance_cache_size == 0
        assert engine.stats.distance_cache_misses == 0

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            SimilarityConfig(distance_cache_cap=0)

"""Unit tests for the 1-D Gaussian mixture EM."""

import numpy as np
import pytest

from repro.core.gmm import GaussianMixture1D


def _bimodal(rng, n1=300, n2=200, mu1=0.0, mu2=10.0, sd1=1.0, sd2=1.5):
    return np.concatenate(
        [rng.normal(mu1, sd1, n1), rng.normal(mu2, sd2, n2)]
    )


class TestFit:
    def test_recovers_two_well_separated_components(self, rng):
        data = _bimodal(rng)
        model = GaussianMixture1D(2).fit(data)
        assert model.means_[0] == pytest.approx(0.0, abs=0.3)
        assert model.means_[1] == pytest.approx(10.0, abs=0.4)
        assert model.weights_[0] == pytest.approx(0.6, abs=0.05)
        assert model.weights_[1] == pytest.approx(0.4, abs=0.05)

    def test_components_sorted_by_mean(self, rng):
        data = _bimodal(rng, mu1=50.0, mu2=-5.0)
        model = GaussianMixture1D(2).fit(data)
        assert model.means_[0] < model.means_[1]

    def test_weights_sum_to_one(self, rng):
        model = GaussianMixture1D(2).fit(_bimodal(rng))
        assert model.weights_.sum() == pytest.approx(1.0)

    def test_variances_positive(self, rng):
        model = GaussianMixture1D(2).fit(_bimodal(rng))
        assert (model.variances_ > 0).all()

    def test_single_component(self, rng):
        data = rng.normal(5.0, 2.0, 500)
        model = GaussianMixture1D(1).fit(data)
        assert model.means_[0] == pytest.approx(5.0, abs=0.3)
        assert np.sqrt(model.variances_[0]) == pytest.approx(2.0, abs=0.3)

    def test_three_components(self, rng):
        data = np.concatenate(
            [rng.normal(0, 0.5, 200), rng.normal(5, 0.5, 200), rng.normal(10, 0.5, 200)]
        )
        model = GaussianMixture1D(3).fit(data)
        assert model.means_ == pytest.approx([0, 5, 10], abs=0.4)

    def test_log_likelihood_improves_over_iterations(self, rng):
        data = _bimodal(rng)
        short = GaussianMixture1D(2).fit(data, max_iter=1)
        long = GaussianMixture1D(2).fit(data, max_iter=200)
        assert long.log_likelihood_ >= short.log_likelihood_ - 1e-6

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError):
            GaussianMixture1D(2).fit([1.0])

    def test_invalid_component_count(self):
        with pytest.raises(ValueError):
            GaussianMixture1D(0)

    def test_identical_data_does_not_crash(self):
        model = GaussianMixture1D(2).fit(np.full(50, 3.0))
        assert np.isfinite(model.means_).all()
        assert np.isfinite(model.variances_).all()

    def test_deterministic(self, rng):
        data = _bimodal(rng)
        a = GaussianMixture1D(2).fit(data)
        b = GaussianMixture1D(2).fit(data)
        assert np.array_equal(a.means_, b.means_)


class TestDensities:
    def test_pdf_integrates_to_one(self, rng):
        model = GaussianMixture1D(2).fit(_bimodal(rng))
        xs = np.linspace(-10, 25, 20_000)
        integral = np.trapezoid(model.pdf(xs), xs)
        assert integral == pytest.approx(1.0, abs=1e-3)

    def test_component_cdf_monotone(self, rng):
        model = GaussianMixture1D(2).fit(_bimodal(rng))
        xs = np.linspace(-10, 25, 100)
        for component in range(2):
            cdf = model.component_cdf(component, xs)
            assert (np.diff(cdf) >= -1e-12).all()
            assert cdf[0] == pytest.approx(0.0, abs=1e-6)
            assert cdf[-1] == pytest.approx(1.0, abs=1e-6)

    def test_cdf_at_mean_is_half(self, rng):
        model = GaussianMixture1D(2).fit(_bimodal(rng))
        for component in range(2):
            value = model.component_cdf(component, np.array([model.means_[component]]))
            assert value[0] == pytest.approx(0.5, abs=1e-9)

    def test_predict_separates_clusters(self, rng):
        model = GaussianMixture1D(2).fit(_bimodal(rng))
        labels = model.predict(np.array([0.0, 10.0]))
        assert labels[0] == 0
        assert labels[1] == 1

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            GaussianMixture1D(2).pdf(np.array([0.0]))

"""LinkageConfig construction, validation and serialization round-trips."""

import json

import pytest

from repro.core.similarity import SimilarityConfig
from repro.lsh import LshConfig
from repro.pipeline import LinkageConfig, LinkagePipeline


class TestValidation:
    def test_defaults(self):
        config = LinkageConfig()
        assert config.matching == "greedy"
        assert config.threshold == "gmm"
        assert config.resolved_candidates() == "brute"

    def test_auto_candidates_resolve_to_lsh(self):
        config = LinkageConfig(lsh=LshConfig())
        assert config.resolved_candidates() == "lsh"

    def test_explicit_candidates_win(self):
        config = LinkageConfig(lsh=LshConfig(), candidates="brute")
        assert config.resolved_candidates() == "brute"

    def test_unknown_matcher_rejected(self):
        with pytest.raises(ValueError, match="unknown matcher"):
            LinkageConfig(matching="magic")

    def test_unknown_threshold_rejected(self):
        with pytest.raises(ValueError, match="unknown threshold method"):
            LinkageConfig(threshold="coin_flip")

    def test_unknown_candidate_stage_rejected(self):
        with pytest.raises(KeyError, match="unknown candidate stage"):
            LinkageConfig(candidates="psychic")

    def test_storage_level_covers_lsh(self):
        config = LinkageConfig(lsh=LshConfig(spatial_level=16))
        assert config.resolved_storage_level() == 16
        assert LinkageConfig(storage_level=20).resolved_storage_level() == 20


class TestRoundTrip:
    def test_default_round_trip(self):
        config = LinkageConfig()
        assert LinkageConfig.from_dict(config.to_dict()) == config

    def test_lsh_none_round_trip(self):
        config = LinkageConfig(lsh=None, threshold="otsu")
        data = config.to_dict()
        assert data["lsh"] is None
        assert LinkageConfig.from_dict(data) == config

    def test_full_round_trip_through_json(self):
        config = LinkageConfig(
            similarity=SimilarityConfig(
                window_width_minutes=30.0, spatial_level=10, backend="python"
            ),
            lsh=LshConfig(threshold=0.4, step_windows=8, num_buckets=512,
                          spatial_level=14),
            matching="hungarian",
            threshold="two_means",
            storage_level=15,
        )
        rebuilt = LinkageConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert rebuilt == config

    def test_unknown_top_level_field_names_key(self):
        with pytest.raises(ValueError, match="'matchign'"):
            LinkageConfig.from_dict({"matchign": "greedy"})

    def test_unknown_similarity_field_names_key(self):
        with pytest.raises(ValueError, match="'window_minutes'"):
            LinkageConfig.from_dict({"similarity": {"window_minutes": 5}})

    def test_unknown_lsh_field_names_key(self):
        with pytest.raises(ValueError, match="'bands'"):
            LinkageConfig.from_dict({"lsh": {"bands": 4}})

    def test_wrong_typed_similarity_rejected(self):
        with pytest.raises(ValueError, match="'similarity' must be a mapping"):
            LinkageConfig.from_dict({"similarity": 5})

    def test_wrong_typed_lsh_rejected(self):
        with pytest.raises(ValueError, match="'lsh' must be null or a mapping"):
            LinkageConfig.from_dict({"lsh": "yes"})

    def test_wrong_typed_storage_level_rejected(self):
        with pytest.raises(ValueError, match="'storage_level'"):
            LinkageConfig.from_dict({"storage_level": "12"})

    def test_wrong_typed_stage_name_rejected(self):
        with pytest.raises(ValueError, match="'matching'"):
            LinkageConfig.from_dict({"matching": 3})

    def test_without(self):
        config = LinkageConfig().without(threshold="none")
        assert config.threshold == "none"
        assert config.matching == "greedy"


class TestRoundTripLinks:
    def test_round_tripped_config_reproduces_links(self, cab_pair):
        """Acceptance: from_dict(to_dict()) produces identical links on
        the default synthetic workload."""
        config = LinkageConfig()
        rebuilt = LinkageConfig.from_dict(config.to_dict())
        original = LinkagePipeline(config).run(cab_pair.left, cab_pair.right)
        replayed = LinkagePipeline(rebuilt).run(cab_pair.left, cab_pair.right)
        assert original.links == replayed.links
        assert original.link_scores == replayed.link_scores

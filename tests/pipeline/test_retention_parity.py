"""Eviction parity under every execution backend.

The retention contract (`tests/core/test_retention.py`) says a relink
after retirement is bit-identical to a cold run over the survivors.  This
suite pins the *executor* half of that contract: the same holds when the
scoring stage shards through the thread / process backends — and CI's
executor matrix additionally re-runs this whole module under each
``REPRO_EXECUTOR`` value.
"""

import pytest

from repro.core.streaming import StreamingLinker
from repro.data import Record
from repro.pipeline import LinkageConfig, stages

WIDTH = 900.0


def _round_records(side, round_idx, per_side=6, windows_per_round=8,
                   records_per_entity=3):
    jitter = 0.0 if side == "left" else 1.5e-4
    base = round_idx * windows_per_round * WIDTH
    return [
        Record(
            f"e{round_idx}_{i}",
            37.5 + 0.01 * i + 0.001 * k + jitter,
            -122.4 + 0.005 * round_idx + jitter,
            base + (k * 2 + i % 2) * WIDTH + 30.0,
        )
        for i in range(per_side)
        for k in range(records_per_entity)
    ]


def _run(config):
    linker = StreamingLinker(origin=0.0, config=config)
    observed = {"left": [], "right": []}
    evictions = 0
    for round_idx in range(4):
        for side in ("left", "right"):
            batch = _round_records(side, round_idx)
            observed[side].extend(batch)
            linker.observe(side, batch)
        linker.relink()
        evictions += linker.last_relink.evicted_left
    report = linker.relink()
    return linker, observed, report, evictions


@pytest.mark.parametrize("executor", ["serial", "thread", "process"])
def test_eviction_parity_across_executors(executor, monkeypatch):
    """Retired-then-relinked must equal a *serial* cold run over the
    survivors, bit for bit, whichever backend sharded the scoring."""
    monkeypatch.setattr(stages, "SCORE_BLOCK_SIZE", 32)  # force sharding
    config = LinkageConfig(
        retention="sliding_window",
        retention_window=12,
        threshold="none",
        executor=executor,
        workers=2,
    )
    linker, observed, report, evictions = _run(config)
    assert evictions > 0  # the stream actually retired entities
    assert linker.num_left_entities < 24  # retention bounded the side

    cold = StreamingLinker(
        origin=0.0, config=config.without(executor="serial")
    )
    for side in ("left", "right"):
        survivors = set(linker._sides[side])
        cold.observe(
            side, [r for r in observed[side] if r.entity_id in survivors]
        )
    cold_report = cold.relink()
    assert report.links == cold_report.links
    assert {(e.left, e.right): e.weight for e in report.edges} == {
        (e.left, e.right): e.weight for e in cold_report.edges
    }
    assert report.stats.bin_comparisons == cold_report.stats.bin_comparisons

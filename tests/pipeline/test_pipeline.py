"""End-to-end tests of the composable stage pipeline: custom stages via
the public registry, unified LinkageReport across linkers, normalized
stage timings."""

import pytest

from repro import LinkageConfig, LinkagePipeline, LinkageReport, SlimConfig, SlimLinker
from repro.baselines import GmLinker, PoisLinker, StLinkLinker
from repro.core.streaming import StreamingLinker
from repro.eval.reporting import stage_timings_table
from repro.pipeline import (
    STAGE_NAMES,
    CandidateStage,
    candidate_stages,
)

CANONICAL = set(STAGE_NAMES)


class TestUnifiedReport:
    def test_slim_linker_returns_report(self, cab_pair):
        report = SlimLinker(SlimConfig()).link(cab_pair.left, cab_pair.right)
        assert isinstance(report, LinkageReport)
        assert set(report.timings) == CANONICAL
        assert report.stages == STAGE_NAMES

    def test_streaming_relink_returns_report(self, cab_pair):
        origin = min(
            cab_pair.left.time_range()[0], cab_pair.right.time_range()[0]
        )
        linker = StreamingLinker(origin=origin)
        linker.observe("left", cab_pair.left.records())
        linker.observe("right", cab_pair.right.records())
        report = linker.relink()
        assert isinstance(report, LinkageReport)
        assert set(report.timings) == CANONICAL
        assert report.extras["relink"] is linker.last_relink

    def test_baselines_return_reports(self, cab_pair):
        for linker in (StLinkLinker(), PoisLinker()):
            report = linker.link_report(cab_pair.left, cab_pair.right)
            assert isinstance(report, LinkageReport)
            assert set(report.timings) == CANONICAL

    def test_gm_report_matches_gm_link(self, cab_pair):
        # GM is slow (per-record kernel); run it once on a reduced pair.
        left = cab_pair.left.subset(cab_pair.left.entities[:6])
        right = cab_pair.right.subset(cab_pair.right.entities[:6])
        linker = GmLinker()
        report = linker.link_report(left, right)
        assert isinstance(report, LinkageReport)
        assert set(report.timings) == CANONICAL
        assert report.links == linker.link(left, right).links

    def test_stlink_report_agrees_with_legacy_result(self, cab_pair):
        linker = StLinkLinker()
        report = linker.link_report(cab_pair.left, cab_pair.right)
        legacy = linker.link(cab_pair.left, cab_pair.right)
        assert report.links == legacy.links
        assert report.extras["k"] == legacy.k
        assert report.extras["l"] == legacy.l

    def test_timing_keys_line_up_across_linkers(self, cab_pair):
        slim = SlimLinker().link(cab_pair.left, cab_pair.right)
        stlink = StLinkLinker().link_report(cab_pair.left, cab_pair.right)
        origin = min(
            cab_pair.left.time_range()[0], cab_pair.right.time_range()[0]
        )
        stream = StreamingLinker(origin=origin)
        stream.observe("left", cab_pair.left.records())
        stream.observe("right", cab_pair.right.records())
        streaming = stream.relink()
        assert set(slim.timings) == set(streaming.timings) == set(stlink.timings)
        table = stage_timings_table(
            {"slim": slim, "streaming": streaming, "stlink": stlink}
        )
        header = table.splitlines()[0].split()
        assert header[0] == "linker"
        assert header[1 : 1 + len(STAGE_NAMES)] == list(STAGE_NAMES)


class TestPipelineEquivalence:
    def test_pipeline_matches_slim_shim(self, cab_pair):
        config = LinkageConfig(threshold="otsu")
        direct = LinkagePipeline(config).run(cab_pair.left, cab_pair.right)
        shim = SlimLinker(config).link(cab_pair.left, cab_pair.right)
        assert direct.links == shim.links

    def test_slim_config_conversion(self):
        slim = SlimConfig(matching="hungarian", threshold_method="none")
        converted = slim.to_linkage_config()
        assert converted.matching == "hungarian"
        assert converted.threshold == "none"

    def test_slim_linker_accepts_linkage_config(self, cab_pair):
        report = SlimLinker(LinkageConfig()).link(cab_pair.left, cab_pair.right)
        assert isinstance(report, LinkageReport)

    def test_streaming_accepts_linkage_config(self):
        linker = StreamingLinker(origin=0.0, config=LinkageConfig())
        assert isinstance(linker.config, LinkageConfig)

    def test_streaming_preserves_legacy_config_attribute(self):
        """SlimConfig callers keep seeing their own config object on
        .config (the normalised form lives on .pipeline_config)."""
        legacy = SlimConfig(threshold_method="otsu")
        linker = StreamingLinker(origin=0.0, config=legacy)
        assert linker.config is legacy
        assert linker.config.threshold_method == "otsu"
        assert linker.pipeline_config.threshold == "otsu"


class TestCustomStage:
    def test_custom_candidate_stage_end_to_end(self, cab_pair):
        """A user-defined candidate stage registered through the public
        API drives a full linkage run — no edits to repro source."""

        @candidate_stages.register("test-last-char", replace=True)
        class LastCharBlocking(CandidateStage):
            """Toy blocking: only pairs whose ids share a final character."""

            calls = 0

            def generate(self, context):
                type(self).calls += 1
                return {
                    (left, right)
                    for left in context.left_histories
                    for right in context.right_histories
                    if left[-1] == right[-1]
                }

        try:
            config = LinkageConfig(candidates="test-last-char")
            report = LinkagePipeline(config).run(cab_pair.left, cab_pair.right)
            assert LastCharBlocking.calls == 1
            assert isinstance(report, LinkageReport)
            # The block keeps some but not all cross pairs.
            full = len(cab_pair.left.entities) * len(cab_pair.right.entities)
            assert 0 < report.candidate_pairs < full
            for left, right in report.links.items():
                assert left[-1] == right[-1]
        finally:
            candidate_stages.unregister("test-last-char")

    def test_custom_threshold_method_end_to_end(self, cab_pair):
        from repro.core.threshold import ThresholdDecision
        from repro.pipeline import threshold_methods

        @threshold_methods.register("test-median", replace=True)
        def median_threshold(weights):
            ordered = sorted(weights)
            return ThresholdDecision(
                threshold=ordered[len(ordered) // 2],
                method="test-median",
                expected_precision=float("nan"),
                expected_recall=float("nan"),
                expected_f1=float("nan"),
            )

        try:
            config = LinkageConfig(threshold="test-median")
            report = LinkagePipeline(config).run(cab_pair.left, cab_pair.right)
            assert report.threshold.method == "test-median"
            assert len(report.links) <= len(report.matched_edges)
        finally:
            threshold_methods.unregister("test-median")

    def test_config_naming_unregistered_stage_fails_loud(self):
        with pytest.raises(KeyError, match="registered candidate stage"):
            LinkageConfig(candidates="never-registered")

"""Executor parity: serial, thread and process backends must produce
bit-identical links, scores and counters.

Shard boundaries are the same under every backend and the batch kernel is
dispatch-deterministic (see :mod:`repro.core.kernels`), so these are exact
``==`` assertions, not tolerances — the contract the ISSUE pins on the
check-in and taxi synthetic workloads.
"""

import pytest

import repro.pipeline.stages as stages
from repro.exec import create_executor
from repro.pipeline import LinkageConfig, LinkagePipeline

BACKENDS = ("serial", "thread", "process")


def _run_all_backends(pair, workers=2):
    reports = {}
    for name in BACKENDS:
        config = LinkageConfig(executor=name, workers=workers)
        reports[name] = LinkagePipeline(config).run(pair.left, pair.right)
    return reports


def _assert_identical(reports):
    baseline = reports["serial"]
    for name in ("thread", "process"):
        report = reports[name]
        assert report.links == baseline.links, name
        assert report.matched_edges == baseline.matched_edges, name
        # Edge is a dataclass: == compares entity ids and exact weights.
        assert report.edges == baseline.edges, name
        assert report.stats == baseline.stats, name
        assert report.candidate_pairs == baseline.candidate_pairs, name
        assert report.threshold.threshold == baseline.threshold.threshold, name


class TestBitIdenticalBackends:
    def test_checkin_workload(self, sm_pair):
        """The sparse check-in world: ~10k brute-force pairs, several
        SCORE_BLOCK_SIZE shards — the parallel path actually engages."""
        reports = _run_all_backends(sm_pair)
        _assert_identical(reports)
        for name in ("thread", "process"):
            info = reports[name].extras["executor"]
            assert info["name"] == name
            assert info["shards"] >= 2
            assert len(reports[name].shard_timings["scoring"]) == info["shards"]

    def test_taxi_workload(self, cab_pair, monkeypatch):
        """The dense taxi world is small; shrink the shard size so its
        candidate set spans several shards and the dense-matrix kernel
        path is exercised under every backend."""
        monkeypatch.setattr(stages, "SCORE_BLOCK_SIZE", 48)
        reports = _run_all_backends(cab_pair)
        _assert_identical(reports)
        assert reports["process"].extras["executor"]["shards"] >= 2

    def test_python_backend_stays_serial(self, cab_pair):
        """The scalar oracle never shards: its distance-cache counters
        depend on one shared engine, so parallel dispatch is refused."""
        config = LinkageConfig(executor="process", workers=2)
        config = config.without(
            similarity=config.similarity.without(backend="python")
        )
        report = LinkagePipeline(config).run(cab_pair.left, cab_pair.right)
        assert report.extras["executor"]["name"] == "serial"

    def test_borrowed_context_executor_survives(self, sm_pair, monkeypatch):
        """An executor lent through LinkagePipeline.run is used but not
        shut down — repeated runs share one pool."""
        monkeypatch.setattr(stages, "SCORE_BLOCK_SIZE", 512)
        executor = create_executor("thread", workers=2)
        try:
            pipeline = LinkagePipeline(LinkageConfig())
            first = pipeline.run(sm_pair.left, sm_pair.right, executor=executor)
            second = pipeline.run(sm_pair.left, sm_pair.right, executor=executor)
            assert first.extras["executor"]["name"] == "thread"
            assert first.links == second.links
            assert executor.stats.dispatches >= 2
        finally:
            executor.shutdown()


class TestSerialDetail:
    def test_serial_reports_per_shard_timings_too(self, sm_pair):
        report = LinkagePipeline(LinkageConfig(executor="serial")).run(
            sm_pair.left, sm_pair.right
        )
        shards = report.shard_timings["scoring"]
        assert len(shards) >= 2  # ~10k pairs / 4096 per shard
        assert report.extras["executor"] == {
            "name": "serial",
            "workers": 1,
            "shards": len(shards),
        }


class TestConfigSurface:
    def test_defaults(self):
        config = LinkageConfig()
        assert config.executor == "auto"
        assert config.workers == 0

    def test_round_trip(self):
        config = LinkageConfig(executor="process", workers=4)
        assert LinkageConfig.from_dict(config.to_dict()) == config

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="registered executors"):
            LinkageConfig(executor="gpu")

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            LinkageConfig(workers=-1)

    def test_wrong_typed_executor_rejected(self):
        with pytest.raises(ValueError, match="'executor'"):
            LinkageConfig.from_dict({"executor": 4})

    def test_wrong_typed_workers_rejected(self):
        with pytest.raises(ValueError, match="'workers'"):
            LinkageConfig.from_dict({"workers": "all"})

    def test_resilience_defaults(self):
        config = LinkageConfig()
        assert config.timeout == 0.0
        assert config.retries == 2

    def test_resilience_round_trip(self):
        config = LinkageConfig(timeout=1.5, retries=5)
        assert LinkageConfig.from_dict(config.to_dict()) == config

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError, match="timeout"):
            LinkageConfig(timeout=-0.5)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            LinkageConfig(retries=-1)

    def test_wrong_typed_timeout_rejected(self):
        with pytest.raises(ValueError, match="'timeout'"):
            LinkageConfig.from_dict({"timeout": "soon"})

    def test_wrong_typed_retries_rejected(self):
        with pytest.raises(ValueError, match="'retries'"):
            LinkageConfig.from_dict({"retries": "lots"})

"""Unit tests for the pipeline plugin registries."""

import pytest

from repro.pipeline import Registry, candidate_stages, matchers, threshold_methods


class TestRegistry:
    def test_register_and_get(self):
        registry = Registry("widget")

        @registry.register("square")
        def make_square():
            return "square"

        assert registry.get("square") is make_square
        assert "square" in registry
        assert registry.names() == ["square"]
        assert len(registry) == 1

    def test_duplicate_name_rejected(self):
        registry = Registry("widget")
        registry.register("x")(lambda: 1)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("x")(lambda: 2)

    def test_duplicate_name_with_replace(self):
        registry = Registry("widget")
        registry.register("x")(lambda: 1)
        replacement = lambda: 2  # noqa: E731
        registry.register("x", replace=True)(replacement)
        assert registry.get("x") is replacement

    def test_unknown_name_error_lists_known(self):
        registry = Registry("widget")
        registry.register("circle")(lambda: 1)
        registry.register("square")(lambda: 2)
        with pytest.raises(KeyError) as excinfo:
            registry.get("triangle")
        message = str(excinfo.value)
        assert "unknown widget 'triangle'" in message
        assert "circle" in message and "square" in message

    def test_empty_name_rejected(self):
        registry = Registry("widget")
        with pytest.raises(ValueError):
            registry.register("")
        with pytest.raises(ValueError):
            registry.register(None)  # type: ignore[arg-type]

    def test_unregister_is_idempotent(self):
        registry = Registry("widget")
        registry.register("x")(lambda: 1)
        registry.unregister("x")
        registry.unregister("x")
        assert "x" not in registry


class TestBuiltinRegistries:
    def test_builtin_candidate_stages(self):
        assert "brute" in candidate_stages
        assert "lsh" in candidate_stages

    def test_builtin_matchers(self):
        for name in ("greedy", "hungarian", "networkx"):
            assert name in matchers

    def test_stlink_matcher_registers_on_import(self):
        import repro.baselines.stlink  # noqa: F401

        assert "stlink" in matchers

    def test_builtin_threshold_methods(self):
        for name in ("gmm", "otsu", "two_means", "none"):
            assert name in threshold_methods

    def test_unknown_candidate_stage_message(self):
        with pytest.raises(KeyError) as excinfo:
            candidate_stages.get("nope")
        assert "brute" in str(excinfo.value)

"""The "temporal" candidate generator: window-overlap blocking."""


from repro.data import LocationDataset, Record
from repro.pipeline import (
    LinkageConfig,
    LinkagePipeline,
    LinkageReport,
    TemporalCandidates,
    candidate_stages,
)


def _dataset(name, entities):
    """``entities`` maps id -> list of (timestamp, lat, lng)."""
    records = [
        Record(entity, lat, lng, t)
        for entity, rows in entities.items()
        for t, lat, lng in rows
    ]
    return LocationDataset.from_records(records, name)


class TestRegistry:
    def test_registered(self):
        assert "temporal" in candidate_stages
        stage = candidate_stages.get("temporal")(LinkageConfig())
        assert isinstance(stage, TemporalCandidates)

    def test_config_accepts_name(self):
        config = LinkageConfig(candidates="temporal")
        assert config.resolved_candidates() == "temporal"


class TestBlocking:
    def test_only_window_overlapping_pairs_survive(self):
        # u and v overlap in the first window; w is alone much later.
        left = _dataset(
            "left",
            {
                "u": [(10.0, 37.77, -122.42)],
                "w": [(90_000.0, 37.77, -122.42)],
            },
        )
        right = _dataset(
            "right",
            {
                "v": [(20.0, 37.77, -122.42)],
                "x": [(180_000.0, 40.71, -74.00)],
            },
        )
        config = LinkageConfig(candidates="temporal")
        report = LinkagePipeline(config).run(left, right)
        assert isinstance(report, LinkageReport)
        # Of the 4 cross pairs only (u, v) shares a window.
        assert report.candidate_pairs == 1
        assert report.links == {"u": "v"}

    def test_subset_of_brute_with_identical_overlapping_scores(self, cab_pair):
        temporal = LinkagePipeline(
            LinkageConfig(candidates="temporal")
        ).run(cab_pair.left, cab_pair.right)
        brute = LinkagePipeline(
            LinkageConfig(candidates="brute")
        ).run(cab_pair.left, cab_pair.right)
        assert temporal.candidate_pairs <= brute.candidate_pairs
        # A pair without common windows scores exactly zero, so dropping
        # them changes no positive-score edge — and hence no link.
        assert temporal.edges == brute.edges
        assert temporal.links == brute.links

    def test_pairs_share_a_window(self, sm_pair):
        from repro.pipeline import PrepareStage
        from repro.pipeline.context import LinkageContext

        config = LinkageConfig(candidates="temporal")
        context = LinkageContext(
            config=config, left=sm_pair.left, right=sm_pair.right
        )
        PrepareStage(config).run(context)
        stage = TemporalCandidates(config)
        pairs = stage.generate(context)
        assert pairs == sorted(pairs)  # deterministic, pre-sorted
        for left_entity, right_entity in pairs:
            left_windows = set(
                context.left_histories[left_entity].windows()
            )
            right_windows = context.right_histories[right_entity].windows()
            assert any(window in left_windows for window in right_windows)


class TestStreamingHonoursCandidateChoice:
    def test_streaming_temporal_matches_streaming_brute(self, cab_pair):
        """The streaming candidate stage dispatches non-LSH names through
        the registry: ``candidates="temporal"`` blocks exactly as in the
        batch pipeline, with identical links to a brute-force stream."""
        from repro.core.streaming import StreamingLinker

        origin = min(
            cab_pair.left.time_range()[0], cab_pair.right.time_range()[0]
        )

        def run(candidates):
            linker = StreamingLinker(
                origin=origin, config=LinkageConfig(candidates=candidates)
            )
            linker.observe("left", cab_pair.left.records())
            linker.observe("right", cab_pair.right.records())
            return linker.relink(), linker

        temporal, temporal_linker = run("temporal")
        brute, _ = run("brute")
        assert temporal.candidate_pairs <= brute.candidate_pairs
        assert temporal.links == brute.links
        assert temporal.edges == brute.edges
        assert not temporal_linker.last_relink.lsh_rebuilt

"""Workload-aware scoring block size: resolution rules and parity.

The block size only shapes the kernel's tensor footprints — results must
be bit-identical at every size (kernel dispatch determinism), which is
what makes the density heuristic safe to apply silently.
"""

import pytest

from repro.pipeline import (
    DENSE_SCORE_BLOCK_SIZE,
    SCORE_BLOCK_SIZE,
    LinkageConfig,
    LinkagePipeline,
    resolve_score_block_size,
    stages,
)


class TestResolution:
    def test_explicit_config_wins(self, cab_pair):
        config = LinkageConfig(score_block_size=777)
        assert resolve_score_block_size(config, None, None) == 777

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCORE_BLOCK_SIZE", "123")
        assert resolve_score_block_size(LinkageConfig(), None, None) == 123

    def test_env_override_must_be_positive(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCORE_BLOCK_SIZE", "0")
        with pytest.raises(ValueError, match="REPRO_SCORE_BLOCK_SIZE"):
            resolve_score_block_size(LinkageConfig(), None, None)

    def test_env_override_must_be_an_integer(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCORE_BLOCK_SIZE", "2k")
        with pytest.raises(ValueError, match="REPRO_SCORE_BLOCK_SIZE"):
            resolve_score_block_size(LinkageConfig(), None, None)

    def test_missing_corpora_fall_back_to_default(self):
        assert (
            resolve_score_block_size(LinkageConfig(), None, None)
            == SCORE_BLOCK_SIZE
        )

    def test_dense_corpus_gets_small_blocks(self, cab_pair):
        report = LinkagePipeline(LinkageConfig()).run(
            cab_pair.left, cab_pair.right
        )
        # Recover the corpora the run built to probe the heuristic.
        from repro.core.corpus import HistoryCorpus
        from repro.core.history import build_histories
        from repro.temporal import common_windowing

        windowing = common_windowing(
            (cab_pair.left.time_range(), cab_pair.right.time_range()), 900.0
        )
        left = HistoryCorpus(
            build_histories(cab_pair.left, windowing, 12), 12
        )
        right = HistoryCorpus(
            build_histories(cab_pair.right, windowing, 12), 12
        )
        # Taxis report every ~150s inside 900s windows: multiple cells per
        # active window on both sides — the dense regime.
        assert left.avg_cells_per_window() > 2.0
        assert (
            resolve_score_block_size(LinkageConfig(), left, right)
            == DENSE_SCORE_BLOCK_SIZE
        )
        assert report.links  # the run itself stayed sane

    def test_sparse_corpus_keeps_large_blocks(self, sm_pair):
        from repro.core.corpus import HistoryCorpus
        from repro.core.history import build_histories
        from repro.temporal import common_windowing

        windowing = common_windowing(
            (sm_pair.left.time_range(), sm_pair.right.time_range()), 900.0
        )
        left = HistoryCorpus(build_histories(sm_pair.left, windowing, 12), 12)
        right = HistoryCorpus(build_histories(sm_pair.right, windowing, 12), 12)
        # Check-ins are one event per window: vector-shaped interactions.
        assert left.avg_cells_per_window() < 2.0
        assert (
            resolve_score_block_size(LinkageConfig(), left, right)
            == SCORE_BLOCK_SIZE
        )

    def test_lowered_module_default_stays_binding(self, monkeypatch, cab_pair):
        """Tests and benches monkeypatch stages.SCORE_BLOCK_SIZE to force
        sharding; the dense choice must not silently raise it back."""
        from repro.core.corpus import HistoryCorpus
        from repro.core.history import build_histories
        from repro.temporal import common_windowing

        windowing = common_windowing(
            (cab_pair.left.time_range(), cab_pair.right.time_range()), 900.0
        )
        left = HistoryCorpus(build_histories(cab_pair.left, windowing, 12), 12)
        right = HistoryCorpus(build_histories(cab_pair.right, windowing, 12), 12)
        monkeypatch.setattr(stages, "SCORE_BLOCK_SIZE", 48)
        assert stages.resolve_score_block_size(LinkageConfig(), left, right) == 48


class TestBlockSizeParity:
    @pytest.mark.parametrize("block", [0, 64, 512, 4096])
    def test_results_identical_at_every_block_size(self, cab_pair, block):
        """Links, scores and counters are bit-identical whatever the
        block size — the heuristic can never change an answer."""
        reference = LinkagePipeline(
            LinkageConfig(score_block_size=4096)
        ).run(cab_pair.left, cab_pair.right)
        report = LinkagePipeline(
            LinkageConfig(score_block_size=block)
        ).run(cab_pair.left, cab_pair.right)
        assert report.links == reference.links
        assert {(e.left, e.right): e.weight for e in report.edges} == {
            (e.left, e.right): e.weight for e in reference.edges
        }
        assert report.stats.bin_comparisons == reference.stats.bin_comparisons
        assert report.stats.common_windows == reference.stats.common_windows
        assert report.stats.alibi_bin_pairs == reference.stats.alibi_bin_pairs

"""The ``--scenario`` CLI path: zoo listing, scenario runs with a quality
footer, argument validation, and determinism across invocations."""

import pytest

from repro.cli import build_parser, main
from repro.scenarios import scenario_names

SCENARIO_ARGS = ["--scenario", "baseline_cab", "--scenario-scale", "0.5"]


class TestParser:
    def test_positionals_are_optional(self):
        args = build_parser().parse_args(["--scenario", "baseline_cab"])
        assert args.left is None and args.right is None
        assert args.scenario == "baseline_cab"
        assert args.scenario_seed is None
        assert args.scenario_scale == 1.0

    def test_scenario_seed_and_scale(self):
        args = build_parser().parse_args(
            ["--scenario", "dropout_gaps", "--scenario-seed", "3",
             "--scenario-scale", "0.25"]
        )
        assert args.scenario_seed == 3
        assert args.scenario_scale == 0.25


class TestValidation:
    def test_no_inputs_is_an_error(self, capsys):
        assert main([]) == 2
        assert "--scenario" in capsys.readouterr().err

    def test_one_csv_is_an_error(self, capsys):
        assert main(["only_left.csv"]) == 2
        assert "two CSV paths" in capsys.readouterr().err

    def test_scenario_plus_csvs_is_an_error(self, capsys):
        assert main(["l.csv", "r.csv", "--scenario", "baseline_cab"]) == 2
        assert "replaces" in capsys.readouterr().err

    def test_unknown_scenario_reports_known_names(self, capsys):
        assert main(["--scenario", "no_such_zoo_member"]) == 2
        err = capsys.readouterr().err
        assert "no_such_zoo_member" in err
        assert "baseline_cab" in err

    def test_invalid_scale_is_an_error(self, capsys):
        assert main(SCENARIO_ARGS[:2] + ["--scenario-scale", "0"]) == 2
        assert "scale" in capsys.readouterr().err


class TestScenarioRun:
    def test_runs_and_prints_quality_footer(self, capsys):
        code = main(SCENARIO_ARGS)
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out.startswith("left,right,score,linked")
        assert "scenario baseline_cab" in captured.err
        assert "f1" in captured.err

    def test_list_scenarios(self, capsys):
        code = main(["--list-scenarios"])
        captured = capsys.readouterr()
        assert code == 0
        listed = [line.split(":")[0] for line in captured.out.splitlines()]
        assert listed == scenario_names()

    def test_same_seed_same_links(self, capsys):
        main(SCENARIO_ARGS + ["--scenario-seed", "5"])
        first = capsys.readouterr().out
        main(SCENARIO_ARGS + ["--scenario-seed", "5"])
        second = capsys.readouterr().out
        assert first == second

    def test_different_seed_changes_pair(self, capsys):
        main(SCENARIO_ARGS + ["--scenario-seed", "5"])
        first = capsys.readouterr().out
        main(SCENARIO_ARGS + ["--scenario-seed", "6"])
        second = capsys.readouterr().out
        assert first != second

    def test_scenario_with_lsh_config(self, capsys):
        code = main(SCENARIO_ARGS + ["--lsh"])
        captured = capsys.readouterr()
        assert code == 0
        assert "scenario baseline_cab" in captured.err

    def test_output_file(self, tmp_path, capsys):
        out = tmp_path / "links.csv"
        code = main(SCENARIO_ARGS + ["--output", str(out)])
        assert code == 0
        assert out.read_text().startswith("left,right,score,linked")
        assert "f1" in capsys.readouterr().err

    @pytest.mark.parametrize("name", ["gps_jitter_burst", "device_swap"])
    def test_other_zoo_members_run(self, name, capsys):
        code = main(["--scenario", name, "--scenario-scale", "0.5"])
        captured = capsys.readouterr()
        assert code == 0
        assert f"scenario {name}" in captured.err

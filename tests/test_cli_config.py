"""CLI --config: serialized LinkageConfig files, flag overrides, errors."""

import json

import pytest

from repro.cli import build_parser, config_from_args, main
from repro.data import sample_linkage_pair, save_csv
from repro.pipeline import LinkageConfig


@pytest.fixture(scope="module")
def config_csv_pair(tmp_path_factory, cab_world):
    tmp_path = tmp_path_factory.mktemp("cli-config")
    world = cab_world.subset(cab_world.entities[:12])
    pair = sample_linkage_pair(world, 0.5, 0.5, rng=9)
    left = tmp_path / "left.csv"
    right = tmp_path / "right.csv"
    save_csv(pair.left, left)
    save_csv(pair.right, right)
    return str(left), str(right), tmp_path


def _resolve(argv):
    from repro.cli import _explicit_flags

    args = build_parser().parse_args(argv)
    return config_from_args(args, _explicit_flags(argv))


class TestConfigFile:
    def test_file_values_applied(self, config_csv_pair):
        left, right, tmp = config_csv_pair
        path = tmp / "run.json"
        config = LinkageConfig(threshold="otsu", matching="hungarian")
        path.write_text(json.dumps(config.to_dict()))
        resolved = _resolve([left, right, "--config", str(path)])
        assert resolved.threshold == "otsu"
        assert resolved.matching == "hungarian"

    def test_explicit_flags_override_file(self, config_csv_pair):
        left, right, tmp = config_csv_pair
        path = tmp / "run.json"
        config = LinkageConfig(threshold="otsu", matching="hungarian")
        path.write_text(json.dumps(config.to_dict()))
        resolved = _resolve(
            [left, right, "--config", str(path), "--threshold-method", "none"]
        )
        assert resolved.threshold == "none"  # flag wins
        assert resolved.matching == "hungarian"  # file survives

    def test_file_defaults_not_clobbered_by_flag_defaults(self, config_csv_pair):
        left, right, tmp = config_csv_pair
        path = tmp / "run.json"
        config = LinkageConfig.from_dict(
            {"similarity": {"window_width_minutes": 30.0}}
        )
        path.write_text(json.dumps(config.to_dict()))
        resolved = _resolve([left, right, "--config", str(path)])
        # 15.0 is the parser default; it must not override the file.
        assert resolved.similarity.window_width_minutes == 30.0

    def test_lsh_flag_enables_over_file_without_lsh(self, config_csv_pair):
        left, right, tmp = config_csv_pair
        path = tmp / "run.json"
        path.write_text(json.dumps(LinkageConfig().to_dict()))
        resolved = _resolve(
            [left, right, "--config", str(path), "--lsh",
             "--lsh-threshold", "0.4"]
        )
        assert resolved.lsh is not None
        assert resolved.lsh.threshold == 0.4

    def test_main_runs_with_config_file(self, config_csv_pair, capsys):
        left, right, tmp = config_csv_pair
        path = tmp / "run.json"
        path.write_text(json.dumps(LinkageConfig(threshold="none").to_dict()))
        assert main([left, right, "--config", str(path)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("left,right,score,linked")


class TestConfigErrors:
    def test_unknown_field_errors_with_key(self, config_csv_pair, capsys):
        left, right, tmp = config_csv_pair
        path = tmp / "bad.json"
        path.write_text(json.dumps({"matchign": "greedy"}))
        assert main([left, right, "--config", str(path)]) == 2
        err = capsys.readouterr().err
        assert "matchign" in err

    def test_unknown_nested_field_errors_with_key(self, config_csv_pair, capsys):
        left, right, tmp = config_csv_pair
        path = tmp / "bad_nested.json"
        path.write_text(json.dumps({"similarity": {"window_minutes": 5}}))
        assert main([left, right, "--config", str(path)]) == 2
        assert "window_minutes" in capsys.readouterr().err

    def test_invalid_json_errors(self, config_csv_pair, capsys):
        left, right, tmp = config_csv_pair
        path = tmp / "broken.json"
        path.write_text("{not json")
        assert main([left, right, "--config", str(path)]) == 2

    def test_missing_file_errors(self, config_csv_pair, capsys):
        left, right, tmp = config_csv_pair
        assert main([left, right, "--config", str(tmp / "absent.json")]) == 2


class TestBundledExample:
    def test_bundled_example_config_runs_end_to_end(self, tmp_path, capsys):
        """The example config + CSVs shipped in examples/ are what the CI
        packaging job drives `slim-link` with after `pip install .` —
        keep them loading and linking."""
        from pathlib import Path

        root = Path(__file__).resolve().parents[1]
        output = tmp_path / "links.csv"
        code = main([
            str(root / "examples" / "data" / "left.csv"),
            str(root / "examples" / "data" / "right.csv"),
            "--config", str(root / "examples" / "slim_link_config.json"),
            "--output", str(output),
        ])
        capsys.readouterr()
        assert code == 0
        lines = output.read_text().splitlines()
        assert lines[0] == "left,right,score,linked"
        assert len(lines) > 1  # it actually linked something

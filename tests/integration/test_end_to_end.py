"""Integration tests: the full SLIM pipeline on both synthetic worlds,
cross-checked against baselines — the qualitative claims of Sec. 5 at
laptop scale."""

import pytest

from repro.baselines import StLinkLinker
from repro.core.similarity import SimilarityConfig
from repro.core.slim import SlimConfig, SlimLinker
from repro.data import sample_linkage_pair
from repro.eval import (
    hit_precision_at_k,
    precision_recall_f1,
    relative_f1,
    run_slim,
    score_all_pairs,
    speedup,
)
from repro.lsh import LshConfig


class TestCabScenario:
    def test_slim_beats_stlink_on_f1(self, cab_pair):
        slim = run_slim(cab_pair, SlimConfig())
        stlink = StLinkLinker().link(cab_pair.left, cab_pair.right)
        stlink_f1 = precision_recall_f1(stlink.links, cab_pair.ground_truth).f1
        # Sec. 5.5: SLIM outperforms ST-Link (allow ties at this scale).
        assert slim.f1 >= stlink_f1 - 0.05

    def test_lsh_speedup_with_modest_f1_loss(self, cab_pair):
        brute = run_slim(cab_pair, SlimConfig())
        lsh = run_slim(
            cab_pair,
            SlimConfig(lsh=LshConfig(threshold=0.5, step_windows=8, spatial_level=14)),
        )
        gain = speedup(brute.bin_comparisons, lsh.bin_comparisons)
        preserved = relative_f1(lsh.f1, brute.f1)
        assert gain > 1.5
        assert preserved > 0.6

    def test_no_false_links_at_high_threshold_quality(self, cab_pair):
        result = SlimLinker(SlimConfig()).link(cab_pair.left, cab_pair.right)
        quality = precision_recall_f1(result.links, cab_pair.ground_truth)
        assert quality.precision >= 0.8

    def test_hit_precision_at_40(self, cab_pair):
        scores, _ = score_all_pairs(cab_pair)
        assert hit_precision_at_k(scores, cab_pair.ground_truth, 40) > 0.85


class TestIntersectionRatioBehaviour:
    @pytest.mark.parametrize("ratio", [0.3, 0.9])
    def test_threshold_guards_precision_across_ratios(self, cab_world, ratio):
        """The stop threshold exists precisely because entity sets only
        partially overlap; precision must hold up even at low ratios."""
        pair = sample_linkage_pair(cab_world, ratio, 0.5, rng=17)
        measures = run_slim(pair, SlimConfig())
        assert measures.quality.precision >= 0.7

    def test_lower_inclusion_probability_reduces_evidence(self, cab_world):
        dense_pair = sample_linkage_pair(cab_world, 0.5, 0.9, rng=19)
        sparse_pair = sample_linkage_pair(cab_world, 0.5, 0.1, rng=19)
        dense = run_slim(dense_pair, SlimConfig())
        sparse = run_slim(sparse_pair, SlimConfig())
        assert sparse.bin_comparisons < dense.bin_comparisons


class TestSmScenario:
    def test_slim_links_sparse_checkins(self, sm_pair):
        measures = run_slim(sm_pair, SlimConfig())
        assert measures.quality.precision > 0.5
        assert measures.quality.recall > 0.3

    def test_lsh_on_sparse_world(self, sm_pair):
        brute = run_slim(sm_pair, SlimConfig())
        lsh = run_slim(
            sm_pair,
            SlimConfig(lsh=LshConfig(threshold=0.4, step_windows=24, spatial_level=14)),
        )
        assert lsh.bin_comparisons <= brute.bin_comparisons


class TestReproducibility:
    def test_same_seed_same_linkage(self, cab_world):
        pair_a = sample_linkage_pair(cab_world, 0.5, 0.5, rng=23)
        pair_b = sample_linkage_pair(cab_world, 0.5, 0.5, rng=23)
        result_a = SlimLinker(SlimConfig()).link(pair_a.left, pair_a.right)
        result_b = SlimLinker(SlimConfig()).link(pair_b.left, pair_b.right)
        assert result_a.links == result_b.links
        assert result_a.threshold.threshold == pytest.approx(
            result_b.threshold.threshold
        )

    def test_lsh_candidates_reproducible(self, cab_pair):
        config = SlimConfig(lsh=LshConfig(threshold=0.5, step_windows=8, spatial_level=14))
        first = SlimLinker(config).link(cab_pair.left, cab_pair.right)
        second = SlimLinker(config).link(cab_pair.left, cab_pair.right)
        assert first.candidate_pairs == second.candidate_pairs
        assert first.links == second.links


class TestWindowWidthBehaviour:
    def test_wider_windows_blur_entities(self, cab_pair):
        """Fig. 4: very wide windows aggregate too much and hurt accuracy
        relative to the 15-minute default (precision-side degradation)."""
        narrow = run_slim(
            cab_pair, SlimConfig(similarity=SimilarityConfig(window_width_minutes=15))
        )
        wide = run_slim(
            cab_pair, SlimConfig(similarity=SimilarityConfig(window_width_minutes=360))
        )
        assert narrow.f1 >= wide.f1 - 0.05

    def test_coarse_spatial_level_blurs_entities(self, cab_pair):
        coarse = run_slim(
            cab_pair, SlimConfig(similarity=SimilarityConfig(spatial_level=4))
        )
        fine = run_slim(
            cab_pair, SlimConfig(similarity=SimilarityConfig(spatial_level=14))
        )
        assert fine.f1 >= coarse.f1 - 0.05

"""Unit tests for dominating-cell signatures."""

import numpy as np
import pytest

from repro.core.history import MobilityHistory
from repro.geo import CellId
from repro.lsh.signature import SignatureSpec, build_signature, signature_similarity
from repro.temporal import Windowing

WINDOWING = Windowing(0.0, 900.0)


def _history(rows, level=16, entity="e"):
    array = np.asarray(rows, dtype=np.float64)
    return MobilityHistory.from_columns(
        entity, array[:, 0], array[:, 1], array[:, 2], WINDOWING, level
    )


class TestSignatureSpec:
    def test_length_rounds_up(self):
        spec = SignatureSpec(0, 10, 3, 14)
        assert spec.length == 4

    def test_exact_division(self):
        assert SignatureSpec(0, 12, 3, 14).length == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            SignatureSpec(0, 10, 0, 14)
        with pytest.raises(ValueError):
            SignatureSpec(0, 0, 1, 14)
        with pytest.raises(ValueError):
            SignatureSpec(0, 10, 2, 31)


class TestBuildSignature:
    def test_placeholder_for_silent_windows(self):
        history = _history([(0.0, 37.77, -122.42)])
        spec = SignatureSpec(0, 8, 2, 14)
        signature = build_signature(history, spec)
        assert len(signature) == 4
        assert signature[0] is not None
        assert signature[1] is None and signature[2] is None and signature[3] is None

    def test_dominating_cell_majority(self):
        # 2 records in SF cell, 1 in a distant cell, same query step.
        history = _history(
            [(0.0, 37.77, -122.42), (950.0, 37.77, -122.42), (1000.0, 37.90, -122.10)]
        )
        spec = SignatureSpec(0, 4, 4, 14)
        signature = build_signature(history, spec)
        assert signature[0] == CellId.from_degrees(37.77, -122.42, 14).id

    def test_signature_level_independent_of_storage(self):
        history = _history([(0.0, 37.77, -122.42)], level=18)
        spec = SignatureSpec(0, 2, 2, 10)
        signature = build_signature(history, spec)
        assert CellId(signature[0]).level() == 10

    def test_deterministic(self):
        history = _history([(0.0, 37.77, -122.42), (100.0, 37.78, -122.41)])
        spec = SignatureSpec(0, 4, 2, 14)
        assert build_signature(history, spec) == build_signature(history, spec)

    def test_same_query_same_slot_across_entities(self):
        """Structural alignment: slot k of every signature covers the same
        leaf windows."""
        h1 = _history([(0.0, 37.77, -122.42)], entity="a")
        h2 = _history([(7_200.0, 40.71, -74.0)], entity="b")
        spec = SignatureSpec(0, 16, 4, 14)
        s1 = build_signature(h1, spec)
        s2 = build_signature(h2, spec)
        assert len(s1) == len(s2) == 4
        assert s1[0] is not None and s2[0] is None
        assert s1[2] is None and s2[2] is not None


class TestSignatureSimilarity:
    def test_identical_signatures(self):
        signature = (1, 2, 3, 4)
        assert signature_similarity(signature, signature) == 1.0

    def test_placeholders_never_match(self):
        assert signature_similarity((None, None), (None, None)) == 0.0

    def test_partial_match(self):
        assert signature_similarity((1, 2, 3, 4), (1, 2, 9, None)) == 0.5

    def test_divided_by_full_length(self):
        # One matching slot out of four, even though only two are populated.
        assert signature_similarity((1, None, None, None), (1, None, None, 5)) == 0.25

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            signature_similarity((1,), (1, 2))

    def test_empty_signatures(self):
        assert signature_similarity((), ()) == 0.0

"""Unit tests for the LSH bucket index."""

import numpy as np
import pytest

from repro.core.history import build_histories
from repro.lsh.index import LshConfig, LshIndex
from repro.lsh.signature import SignatureSpec, build_signature, signature_similarity
from repro.temporal import common_windowing


def _spec(config, total_windows=64):
    return SignatureSpec(0, total_windows, config.step_windows, config.spatial_level)


class TestLshConfig:
    def test_defaults(self):
        config = LshConfig()
        assert config.threshold == 0.6
        assert config.num_buckets == 4096

    def test_validation(self):
        with pytest.raises(ValueError):
            LshConfig(threshold=0.0)
        with pytest.raises(ValueError):
            LshConfig(threshold=1.0)
        with pytest.raises(ValueError):
            LshConfig(step_windows=0)
        with pytest.raises(ValueError):
            LshConfig(num_buckets=0)
        with pytest.raises(ValueError):
            LshConfig(spatial_level=31)


class TestIndexBasics:
    def test_level_mismatch_raises(self):
        config = LshConfig(spatial_level=16)
        spec = SignatureSpec(0, 64, config.step_windows, 14)
        with pytest.raises(ValueError):
            LshIndex(config, spec)

    def test_identical_signatures_always_collide(self):
        config = LshConfig(threshold=0.6, step_windows=4, spatial_level=14)
        spec = _spec(config)
        index = LshIndex(config, spec)
        signature = tuple(
            100 + slot if slot % 2 == 0 else None for slot in range(spec.length)
        )
        index.add("l1", signature, "left")
        index.add("r1", signature, "right")
        assert ("l1", "r1") in index.candidate_pairs()

    def test_disjoint_signatures_never_collide(self):
        config = LshConfig(threshold=0.6, step_windows=4, spatial_level=14, num_buckets=1 << 20)
        spec = _spec(config)
        index = LshIndex(config, spec)
        index.add("l1", tuple(range(100, 100 + spec.length)), "left")
        index.add("r1", tuple(range(500, 500 + spec.length)), "right")
        assert index.candidate_pairs() == set()

    def test_invalid_side_raises(self):
        config = LshConfig(step_windows=4, spatial_level=14)
        index = LshIndex(config, _spec(config))
        with pytest.raises(ValueError):
            index.add("x", (1,) * index.spec.length, "middle")

    def test_all_placeholder_signature_hashes_nothing(self):
        config = LshConfig(step_windows=4, spatial_level=14)
        index = LshIndex(config, _spec(config))
        index.add("ghost", (None,) * index.spec.length, "left")
        assert index.stats.hashed_bands_left == 0
        assert index.candidate_pairs() == set()

    def test_same_side_pairs_not_candidates(self):
        config = LshConfig(step_windows=4, spatial_level=14)
        index = LshIndex(config, _spec(config))
        signature = tuple(range(200, 200 + index.spec.length))
        index.add("l1", signature, "left")
        index.add("l2", signature, "left")
        assert index.candidate_pairs() == set()

    def test_fewer_buckets_more_candidates(self):
        """Bucket collisions (Fig. 9): shrinking the table can only add
        accidental candidates."""
        rng = np.random.default_rng(3)
        config_small = LshConfig(threshold=0.6, step_windows=4, spatial_level=14, num_buckets=8)
        config_large = LshConfig(threshold=0.6, step_windows=4, spatial_level=14, num_buckets=1 << 20)
        small = LshIndex(config_small, _spec(config_small))
        large = LshIndex(config_large, _spec(config_large))
        for index in (small, large):
            for k in range(40):
                signature = tuple(int(rng.integers(0, 50)) for _ in range(index.spec.length))
                index.add(f"l{k}", signature, "left")
                signature = tuple(int(rng.integers(0, 50)) for _ in range(index.spec.length))
                index.add(f"r{k}", signature, "right")
        assert len(small.candidate_pairs()) >= len(large.candidate_pairs())

    def test_stats_populated(self):
        config = LshConfig(step_windows=4, spatial_level=14)
        index = LshIndex(config, _spec(config))
        signature = tuple(range(300, 300 + index.spec.length))
        index.add("l1", signature, "left")
        index.add("r1", signature, "right")
        index.candidate_pairs()
        assert index.stats.signature_length == index.spec.length
        assert index.stats.num_bands >= 1
        assert index.stats.buckets_used >= 1
        assert index.stats.candidate_pairs == 1


class TestIndexOnHistories:
    def test_true_pairs_mostly_survive(self, cab_pair):
        """With a permissive threshold, LSH keeps the ground-truth pairs."""
        config = LshConfig(threshold=0.4, step_windows=8, spatial_level=14)
        windowing = common_windowing(
            (cab_pair.left.time_range(), cab_pair.right.time_range()), 900.0
        )
        latest = max(cab_pair.left.time_range()[1], cab_pair.right.time_range()[1])
        total = windowing.index_of(latest) + 1
        left = build_histories(cab_pair.left, windowing, 14)
        right = build_histories(cab_pair.right, windowing, 14)
        spec = SignatureSpec(0, total, config.step_windows, config.spatial_level)
        index = LshIndex(config, spec)
        index.add_histories(left, right)
        candidates = index.candidate_pairs()
        kept = sum(
            1 for pair in cab_pair.ground_truth.items() if pair in candidates
        )
        assert kept >= 0.6 * len(cab_pair.ground_truth)

    def test_candidate_signature_similarity_tends_high(self, cab_pair):
        """Candidates should have higher signature similarity on average
        than non-candidates (the LSH S-curve at work)."""
        config = LshConfig(threshold=0.5, step_windows=8, spatial_level=14)
        windowing = common_windowing(
            (cab_pair.left.time_range(), cab_pair.right.time_range()), 900.0
        )
        latest = max(cab_pair.left.time_range()[1], cab_pair.right.time_range()[1])
        total = windowing.index_of(latest) + 1
        left = build_histories(cab_pair.left, windowing, 14)
        right = build_histories(cab_pair.right, windowing, 14)
        spec = SignatureSpec(0, total, config.step_windows, config.spatial_level)
        signatures_left = {e: build_signature(h, spec) for e, h in left.items()}
        signatures_right = {e: build_signature(h, spec) for e, h in right.items()}
        index = LshIndex(config, spec)
        for entity, signature in signatures_left.items():
            index.add(entity, signature, "left")
        for entity, signature in signatures_right.items():
            index.add(entity, signature, "right")
        candidates = index.candidate_pairs()
        if not candidates:
            pytest.skip("no candidates at this parameterisation")
        candidate_sims = [
            signature_similarity(signatures_left[l], signatures_right[r])
            for l, r in candidates
        ]
        all_sims = [
            signature_similarity(sl, sr)
            for sl in signatures_left.values()
            for sr in signatures_right.values()
        ]
        assert np.mean(candidate_sims) > np.mean(all_sims)


class TestVectorizedHashing:
    """The batched band-hashing pass must be indistinguishable from
    incremental single-signature inserts."""

    def _worlds(self, cab_pair, level=14):
        windowing = common_windowing(
            (cab_pair.left.time_range(), cab_pair.right.time_range()), 900.0
        )
        latest = max(cab_pair.left.time_range()[1], cab_pair.right.time_range()[1])
        total = windowing.index_of(latest) + 1
        left = build_histories(cab_pair.left, windowing, level)
        right = build_histories(cab_pair.right, windowing, level)
        config = LshConfig(threshold=0.5, step_windows=8, spatial_level=level)
        spec = SignatureSpec(0, total, config.step_windows, level)
        return config, spec, left, right

    def test_batch_equals_incremental(self, cab_pair):
        config, spec, left, right = self._worlds(cab_pair)
        batched = LshIndex(config, spec)
        batched.add_histories(left, right)
        incremental = LshIndex(config, spec)
        for entity, history in left.items():
            incremental.add(entity, build_signature(history, spec), "left")
        for entity, history in right.items():
            incremental.add(entity, build_signature(history, spec), "right")
        assert batched.candidate_pairs() == incremental.candidate_pairs()
        assert batched.stats.hashed_bands_left == incremental.stats.hashed_bands_left
        assert (
            batched.stats.hashed_bands_right
            == incremental.stats.hashed_bands_right
        )

    def test_bucket_ids_cover_small_tables(self, cab_pair):
        """Power-of-two bucket tables must see high-bit entropy (cell ids
        at coarse levels have constant low bits); a healthy hash spreads
        distinct signatures over many buckets."""
        from repro.lsh.banding import band_bucket_ids
        from repro.lsh.signature import signatures_to_array

        _, spec, left, _ = self._worlds(cab_pair)
        packed = signatures_to_array(
            build_signature(history, spec) for history in left.values()
        )
        rows = band_bucket_ids(packed, 4, 4096)
        hashed = rows[rows >= 0]
        assert len(np.unique(hashed)) > len(left) // 2

"""Property-based tests for LSH invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsh.banding import (
    bands_for_threshold,
    collision_probability,
    implied_threshold,
    split_bands,
)
from repro.lsh.signature import signature_similarity

signature_strategy = st.lists(
    st.one_of(st.none(), st.integers(min_value=0, max_value=50)),
    min_size=1,
    max_size=24,
)


@given(signature=signature_strategy, data=st.data())
@settings(max_examples=150, deadline=None)
def test_split_bands_partitions_populated_slots(signature, data):
    num_bands = data.draw(st.integers(min_value=1, max_value=len(signature)))
    bands = split_bands(signature, num_bands)
    assert len(bands) == num_bands
    covered = [slot for band in bands if band for slot, _ in band]
    expected = [k for k, value in enumerate(signature) if value is not None]
    assert covered == expected


@given(a=signature_strategy, b=signature_strategy)
@settings(max_examples=150, deadline=None)
def test_signature_similarity_bounds_and_symmetry(a, b):
    length = min(len(a), len(b))
    a, b = tuple(a[:length]), tuple(b[:length])
    if not a:
        return
    similarity = signature_similarity(a, b)
    assert 0.0 <= similarity <= 1.0
    assert similarity == signature_similarity(b, a)


@given(signature=signature_strategy)
@settings(max_examples=100, deadline=None)
def test_self_similarity_is_populated_fraction(signature):
    signature = tuple(signature)
    populated = sum(1 for value in signature if value is not None)
    assert signature_similarity(signature, signature) == populated / len(signature)


@given(
    length=st.integers(min_value=2, max_value=200),
    threshold=st.floats(min_value=0.05, max_value=0.95),
)
@settings(max_examples=150, deadline=None)
def test_bands_for_threshold_in_range_and_anti_monotone(length, threshold):
    bands = bands_for_threshold(length, threshold)
    assert 1 <= bands <= length
    higher = bands_for_threshold(length, min(0.99, threshold + 0.2))
    assert higher <= bands  # stricter threshold -> fewer bands


@given(
    length=st.integers(min_value=2, max_value=100),
    data=st.data(),
)
@settings(max_examples=100, deadline=None)
def test_collision_probability_is_s_curve(length, data):
    bands = data.draw(st.integers(min_value=1, max_value=length))
    values = [collision_probability(t / 20, length, bands) for t in range(21)]
    assert values[0] == 0.0
    assert abs(values[-1] - 1.0) < 1e-9
    assert all(x <= y + 1e-12 for x, y in zip(values, values[1:]))


@given(
    length=st.integers(min_value=2, max_value=100),
    data=st.data(),
)
@settings(max_examples=100, deadline=None)
def test_implied_threshold_has_half_collision_probability_nearby(length, data):
    """At t = (1/b)^(1/r) the collision probability sits mid-rise: strictly
    between its tails."""
    bands = data.draw(st.integers(min_value=1, max_value=length))
    t_star = implied_threshold(length, bands)
    at_star = collision_probability(t_star, length, bands)
    assert collision_probability(max(0.0, t_star - 0.3), length, bands) <= at_star
    assert at_star <= collision_probability(min(1.0, t_star + 0.3), length, bands)

"""Unit tests for the banding arithmetic (Lambert W) and band splitting."""

import math

import pytest

from repro.lsh.banding import (
    bands_for_threshold,
    collision_probability,
    implied_threshold,
    split_bands,
)


class TestBandsForThreshold:
    def test_closed_form_matches_definition(self):
        """b = exp(W(-s ln t)) must satisfy t ~ (1/b)^(b/s)."""
        for s, t in ((24, 0.6), (48, 0.5), (100, 0.8), (16, 0.4)):
            b = bands_for_threshold(s, t)
            realised = (1.0 / b) ** (b / s)
            assert realised == pytest.approx(t, abs=0.12)

    def test_lower_threshold_needs_more_bands(self):
        assert bands_for_threshold(48, 0.4) > bands_for_threshold(48, 0.8)

    def test_bounds(self):
        assert 1 <= bands_for_threshold(4, 0.99) <= 4
        assert 1 <= bands_for_threshold(4, 0.01) <= 4

    def test_validation(self):
        with pytest.raises(ValueError):
            bands_for_threshold(0, 0.5)
        with pytest.raises(ValueError):
            bands_for_threshold(10, 0.0)
        with pytest.raises(ValueError):
            bands_for_threshold(10, 1.0)

    def test_implied_threshold_inverse(self):
        s = 60
        for t in (0.4, 0.6, 0.8):
            b = bands_for_threshold(s, t)
            assert implied_threshold(s, b) == pytest.approx(t, abs=0.1)

    def test_implied_threshold_validation(self):
        with pytest.raises(ValueError):
            implied_threshold(4, 5)
        with pytest.raises(ValueError):
            implied_threshold(4, 0)


class TestCollisionProbability:
    def test_s_curve_endpoints(self):
        assert collision_probability(0.0, 24, 6) == 0.0
        assert collision_probability(1.0, 24, 6) == pytest.approx(1.0)

    def test_monotone_in_similarity(self):
        values = [collision_probability(t / 10, 24, 6) for t in range(11)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_steepest_near_threshold(self):
        """The rise is steepest near t = (1/b)^(1/r)."""
        s, b = 24, 6
        t_star = implied_threshold(s, b)
        low = collision_probability(max(0.0, t_star - 0.25), s, b)
        high = collision_probability(min(1.0, t_star + 0.25), s, b)
        assert high - low > 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            collision_probability(1.5, 10, 2)


class TestSplitBands:
    def test_band_count_and_coverage(self):
        signature = tuple(range(10))
        bands = split_bands(signature, 3)
        assert len(bands) == 3
        covered = [slot for band in bands for slot, _ in band]
        assert covered == list(range(10))

    def test_uneven_split_puts_extra_in_leading_bands(self):
        bands = split_bands(tuple(range(7)), 3)
        sizes = [len(band) for band in bands]
        assert sizes == [3, 2, 2]

    def test_placeholders_omitted(self):
        bands = split_bands((1, None, 3, None), 2)
        assert bands[0] == ((0, 1),)
        assert bands[1] == ((2, 3),)

    def test_all_placeholder_band_is_none(self):
        bands = split_bands((None, None, 5, 6), 2)
        assert bands[0] is None
        assert bands[1] == ((2, 5), (3, 6))

    def test_slot_positions_prevent_cross_alignment(self):
        """(1, None) and (None, 1) must not produce identical bands."""
        a = split_bands((1, None), 1)
        b = split_bands((None, 1), 1)
        assert a != b

    def test_validation(self):
        with pytest.raises(ValueError):
            split_bands((1, 2), 0)
        with pytest.raises(ValueError):
            split_bands((1, 2), 3)

    def test_math_consistency_with_paper_example(self):
        """Sec. 4 example: 12-window history, queries of 3 windows ->
        4 slots, 2 bands of 2 rows."""
        signature = (10, 20, 30, None)
        bands = split_bands(signature, 2)
        assert len(bands) == 2
        assert bands[0] == ((0, 10), (1, 20))
        assert bands[1] == ((2, 30),)
        assert math.isclose(implied_threshold(4, 2), (1 / 2) ** (1 / 2))

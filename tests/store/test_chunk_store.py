"""Unit tests for the chunked on-disk column store and its chunk LRU."""

from __future__ import annotations

import numpy as np
import pytest

from repro.store import ChunkedColumnStore, ChunkLRU, hilbert_index, hilbert_key
from repro.geo.cell import MAX_LEVEL, CellId


@pytest.fixture()
def store(tmp_path):
    return ChunkedColumnStore.create(tmp_path / "store", chunk_rows=8)


def test_round_trip_per_dtype(store):
    columns = {
        "cells": np.arange(37, dtype=np.uint64) * 3,
        "slots": np.linspace(-5.0, 5.0, 37).astype(np.float64),
        "keys": np.arange(37, dtype=np.int64) - 18,
    }
    for name, array in columns.items():
        store.put(name, array)
    for name, array in columns.items():
        view = store.column(name)
        assert view.dtype == array.dtype
        np.testing.assert_array_equal(np.asarray(view), array)
    assert sorted(store.names()) == sorted(columns)
    # 37 rows at chunk_rows=8 -> 5 logical chunks.
    assert store.num_chunks("cells") == 5


def test_column_is_one_contiguous_read_only_view(store):
    data = np.arange(20, dtype=np.float64)
    store.put("slots", data)
    view = store.column("slots")
    # Kernels gather with absolute-offset fancy indexing across chunk
    # boundaries; a per-chunk file layout would break this.
    np.testing.assert_array_equal(view[[0, 9, 19]], data[[0, 9, 19]])
    with pytest.raises((ValueError, TypeError)):
        view[0] = 99.0


def test_extend_appends_and_truncates_to_start(store):
    store.put("cells", np.arange(10, dtype=np.uint64))
    store.extend("cells", np.arange(100, 105, dtype=np.uint64), start=10)
    np.testing.assert_array_equal(
        np.asarray(store.column("cells")),
        np.concatenate([np.arange(10), np.arange(100, 105)]).astype(np.uint64),
    )
    # Re-extending at an interior start discards what followed it first
    # (the transactional-relink rewind shape).
    store.extend("cells", np.asarray([7, 8], dtype=np.uint64), start=4)
    np.testing.assert_array_equal(
        np.asarray(store.column("cells")),
        np.asarray([0, 1, 2, 3, 7, 8], dtype=np.uint64),
    )


def test_extend_rejects_gap(store):
    store.put("cells", np.arange(4, dtype=np.uint64))
    with pytest.raises(ValueError):
        store.extend("cells", np.arange(2, dtype=np.uint64), start=9)


def test_generation_rewrite_is_atomic_and_pruned(store):
    store.put("keys", np.arange(16, dtype=np.int64))
    first_gen = store.generation("keys")
    writer = store.rewriter("keys", np.int64)
    writer.append(np.arange(100, 108, dtype=np.int64))
    # Uncommitted rewrite is invisible.
    np.testing.assert_array_equal(
        np.asarray(store.column("keys")), np.arange(16, dtype=np.int64)
    )
    writer.commit()
    assert store.generation("keys") == first_gen + 1
    np.testing.assert_array_equal(
        np.asarray(store.column("keys")), np.arange(100, 108, dtype=np.int64)
    )
    # The superseded generation file survives until the next checkpoint
    # (a rollback may still need it), then is pruned.
    assert store.column_path("keys", first_gen).exists()
    store.checkpoint()
    assert not store.column_path("keys", first_gen).exists()


def test_aborted_rewrite_leaves_no_trace(store):
    store.put("keys", np.arange(4, dtype=np.int64))
    writer = store.rewriter("keys", np.int64)
    writer.append(np.arange(2, dtype=np.int64))
    writer.abort()
    np.testing.assert_array_equal(
        np.asarray(store.column("keys")), np.arange(4, dtype=np.int64)
    )
    assert not store.column_path("keys", store.generation("keys") + 1).exists()


def test_checkpoint_restore_rewinds_appends(store):
    store.put("cells", np.arange(12, dtype=np.uint64))
    state = store.checkpoint()
    store.extend("cells", np.arange(50, 60, dtype=np.uint64), start=12)
    assert store.rows("cells") == 22
    store.restore(state)
    assert store.rows("cells") == 12
    np.testing.assert_array_equal(
        np.asarray(store.column("cells")), np.arange(12, dtype=np.uint64)
    )


def test_reopen_from_manifest(tmp_path):
    store = ChunkedColumnStore.create(tmp_path / "store", chunk_rows=8)
    store.put("idf", np.linspace(0, 1, 19))
    again = ChunkedColumnStore.open(tmp_path / "store")
    assert again.chunk_rows == 8
    np.testing.assert_array_equal(
        np.asarray(again.column("idf")), np.linspace(0, 1, 19)
    )


class TestChunkLRU:
    def test_bounded_residency_and_counters(self, store):
        store.put("cells", np.arange(64, dtype=np.uint64))  # 8 chunks
        lru = ChunkLRU(store, capacity_chunks=3)
        for index in range(8):
            np.testing.assert_array_equal(
                lru.chunk("cells", index),
                np.arange(index * 8, index * 8 + 8, dtype=np.uint64),
            )
        stats = lru.stats()
        assert stats["misses"] == 8
        assert stats["chunks"] == 3
        assert stats["resident_bytes"] == 3 * 8 * 8
        # The newest chunks are resident; the oldest were evicted.
        lru.chunk("cells", 7)
        assert lru.stats()["hits"] == 1
        lru.chunk("cells", 0)
        assert lru.stats()["misses"] == 9

    def test_iter_chunks_streams_whole_column(self, store):
        store.put("keys", np.arange(21, dtype=np.int64))
        lru = ChunkLRU(store, capacity_chunks=2)
        streamed = np.concatenate(
            [chunk for _, chunk in lru.iter_chunks("keys")]
        )
        np.testing.assert_array_equal(streamed, np.arange(21, dtype=np.int64))

    def test_extend_invalidates_cached_tail_chunk(self, store):
        """Regression: an extend within the same generation must not be
        served a stale (short) copy of the partial tail chunk."""
        store.put("keys", np.arange(6, dtype=np.int64))
        lru = ChunkLRU(store, capacity_chunks=4)
        assert len(lru.chunk("keys", 0)) == 6  # cache the partial tail
        store.extend("keys", np.arange(100, 104, dtype=np.int64), start=6)
        np.testing.assert_array_equal(
            lru.chunk("keys", 0),
            np.concatenate([np.arange(6), [100, 101]]).astype(np.int64),
        )
        np.testing.assert_array_equal(
            np.concatenate([chunk for _, chunk in lru.iter_chunks("keys")]),
            np.asarray(store.column("keys")),
        )

    def test_generation_rewrite_invalidates_cache(self, store):
        store.put("keys", np.arange(8, dtype=np.int64))
        lru = ChunkLRU(store, capacity_chunks=4)
        lru.chunk("keys", 0)
        store.put("keys", np.arange(50, 58, dtype=np.int64))
        np.testing.assert_array_equal(
            lru.chunk("keys", 0), np.arange(50, 58, dtype=np.int64)
        )


class TestHilbert:
    def test_order_three_is_a_bijection(self):
        side = 1 << 3
        seen = {
            hilbert_index(3, i, j) for i in range(side) for j in range(side)
        }
        assert seen == set(range(side * side))

    def test_adjacent_curve_positions_are_grid_neighbours(self):
        side = 1 << 3
        by_index = {
            hilbert_index(3, i, j): (i, j)
            for i in range(side)
            for j in range(side)
        }
        for d in range(side * side - 1):
            (i1, j1), (i2, j2) = by_index[d], by_index[d + 1]
            assert abs(i1 - i2) + abs(j1 - j2) == 1

    def test_hilbert_key_orders_by_face_first(self):
        cell = CellId.from_degrees(37.77, -122.42, MAX_LEVEL)
        key = hilbert_key(cell.id)
        assert key >> (2 * MAX_LEVEL) == cell.to_face_ij()[0]

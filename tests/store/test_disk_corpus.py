"""Disk-backed corpus parity: ``storage="disk"`` must be invisible.

The out-of-core backend swaps the corpus flat array views for memmaps
over the chunked column store; kernels, the scalar oracle and every
downstream counter must see bit-identical data.  These tests pin a full
streaming replay — links, scores, relink diagnostics — against the
in-core linker, plus the corpus-level accessor parity the kernels rely
on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.streaming import StreamingLinker
from repro.data import Record
from repro.lsh.index import LshConfig
from repro.pipeline import LinkageConfig


def _round_records(side, round_index, per_side=14):
    jitter = 0.0 if side == "left" else 1.1e-4
    return [
        Record(
            f"e{i}",
            37.6 + (i % 5) * 0.01 + jitter,
            -122.4 + (i // 5) * 0.01 + jitter,
            round_index * 3600.0 + (i * 7) % 3500 + 10.0,
        )
        for i in range(per_side)
    ]


def _replay(linker, rounds):
    report = None
    for round_index in rounds:
        linker.observe("left", _round_records("left", round_index))
        linker.observe("right", _round_records("right", round_index))
        report = linker.relink()
    return report


@pytest.mark.parametrize(
    "config",
    [None, LinkageConfig(lsh=LshConfig(threshold=0.3))],
    ids=["default", "lsh"],
)
def test_disk_linker_bit_identical_to_in_core(tmp_path, config):
    in_core = StreamingLinker(0.0, config=config)
    on_disk = StreamingLinker(
        0.0, config=config, storage="disk", store_dir=tmp_path / "store"
    )
    memory_report = _replay(in_core, range(5))
    disk_report = _replay(on_disk, range(5))

    assert dict(memory_report.links) == dict(disk_report.links)
    assert memory_report.link_scores == disk_report.link_scores
    assert memory_report.threshold.threshold == disk_report.threshold.threshold
    assert in_core.last_relink == on_disk.last_relink


def test_disk_linker_resident_bytes_are_bounded(tmp_path):
    in_core = StreamingLinker(0.0)
    on_disk = StreamingLinker(
        0.0, storage="disk", store_dir=tmp_path / "store"
    )
    _replay(in_core, range(5))
    _replay(on_disk, range(5))
    memory_stats = in_core.memory_stats()
    disk_stats = on_disk.memory_stats()
    for side in ("left", "right"):
        key = f"{side}_flat_resident_bytes"
        assert 0 < disk_stats[key] < memory_stats[key]
    # Everything except flat residency matches exactly.
    for key, value in memory_stats.items():
        if not key.endswith("flat_resident_bytes"):
            assert disk_stats[key] == value, key


def test_disk_corpus_accessors_match_in_core(tmp_path):
    """Per-entity flat slices from the spilled corpus are bitwise equal.

    The spill re-sorts entities along the Hilbert curve, so the *global*
    flat layout legitimately differs; what the kernels consume — each
    entity's windows and its per-window cell/slot/key/IDF slices — must
    be identical.
    """
    in_core = StreamingLinker(0.0)
    on_disk = StreamingLinker(
        0.0, storage="disk", store_dir=tmp_path / "store"
    )
    _replay(in_core, range(3))
    _replay(on_disk, range(3))
    for side in ("left", "right"):
        memory_corpus = in_core._corpora[side]
        disk_corpus = on_disk._corpora[side]
        assert memory_corpus.storage == "memory"
        assert disk_corpus.storage == "disk"
        memory_flats = memory_corpus.arrays()
        disk_flats = disk_corpus.arrays()
        assert sorted(memory_corpus.entities) == sorted(
            disk_corpus.entities
        )
        for entity in memory_corpus.entities:
            memory_index = memory_corpus.window_index(entity)
            disk_index = disk_corpus.window_index(entity)
            np.testing.assert_array_equal(
                memory_index.windows, disk_index.windows
            )
            np.testing.assert_array_equal(
                memory_index.counts, disk_index.counts
            )
            for k in range(len(memory_index)):
                m0, d0 = memory_index.offsets[k], disk_index.offsets[k]
                count = memory_index.counts[k]
                for field in ("cells", "slots", "idf"):
                    np.testing.assert_array_equal(
                        np.asarray(
                            getattr(memory_flats, field)[m0 : m0 + count]
                        ),
                        np.asarray(
                            getattr(disk_flats, field)[d0 : d0 + count]
                        ),
                    )

"""Whole-linker snapshot/restore parity, pinned per executor backend.

A linker restored from ``StreamingLinker.save`` must continue the stream
bit-identically to the linker that never stopped — links, scores, relink
diagnostics and the score-cache contents — under every scoring executor.
"""

from __future__ import annotations

import pytest

from repro.core.streaming import StreamingLinker
from repro.data import Record
from repro.pipeline import LinkageConfig

BACKENDS = ("serial", "thread", "process")


def _round_records(side, round_index, per_side=12):
    jitter = 0.0 if side == "left" else 1.1e-4
    return [
        Record(
            f"e{i}",
            37.6 + (i % 4) * 0.01 + jitter,
            -122.4 + (i // 4) * 0.01 + jitter,
            round_index * 3600.0 + (i * 7) % 3500 + 10.0,
        )
        for i in range(per_side)
    ]


def _replay(linker, rounds):
    report = None
    for round_index in rounds:
        linker.observe("left", _round_records("left", round_index))
        linker.observe("right", _round_records("right", round_index))
        report = linker.relink()
    return report


@pytest.mark.parametrize("backend", BACKENDS)
def test_restored_linker_relinks_bit_identically(tmp_path, backend):
    config = LinkageConfig(executor=backend, workers=2)
    continuous = StreamingLinker(0.0, config=config)
    _replay(continuous, range(3))
    continuous.save(tmp_path / "snaps")

    restored = StreamingLinker.restore(tmp_path / "snaps")
    assert restored is not None
    assert restored.watermark == continuous.watermark
    assert restored.last_relink == continuous.last_relink

    continued = _replay(continuous, range(3, 6))
    resumed = _replay(restored, range(3, 6))
    assert dict(continued.links) == dict(resumed.links)
    assert continued.link_scores == resumed.link_scores
    assert continued.threshold.threshold == resumed.threshold.threshold
    assert continuous.last_relink == restored.last_relink


def test_restored_linker_carries_the_score_cache(tmp_path):
    linker = StreamingLinker(0.0)
    _replay(linker, range(3))
    linker.save(tmp_path / "snaps")
    restored = StreamingLinker.restore(tmp_path / "snaps")
    assert len(restored._score_cache) == len(linker._score_cache)
    assert len(restored._score_cache) > 0
    # A pure replay of the next round scores only the new window pairs;
    # the warm cache makes the reuse diagnostics match exactly.
    continued = _replay(linker, [3])
    resumed = _replay(restored, [3])
    assert linker.last_relink == restored.last_relink
    assert continued.link_scores == resumed.link_scores


def test_restore_into_disk_storage(tmp_path):
    """A snapshot from an in-core linker restores into ``storage="disk"``
    (and vice versa) with identical links — storage is not part of the
    persisted state, it is how the restored process chooses to run."""
    in_core = StreamingLinker(0.0)
    _replay(in_core, range(3))
    in_core.save(tmp_path / "snaps")
    on_disk = StreamingLinker.restore(
        tmp_path / "snaps", storage="disk", store_dir=tmp_path / "store"
    )
    continued = _replay(in_core, range(3, 5))
    resumed = _replay(on_disk, range(3, 5))
    assert dict(continued.links) == dict(resumed.links)
    assert continued.link_scores == resumed.link_scores


def test_save_then_save_again_prunes_previous(tmp_path):
    linker = StreamingLinker(0.0)
    _replay(linker, range(2))
    first = linker.save(tmp_path / "snaps")
    _replay(linker, [2])
    second = linker.save(tmp_path / "snaps")
    assert second.name > first.name
    assert not first.exists()
    assert (tmp_path / "snaps" / "CURRENT").read_text() == second.name

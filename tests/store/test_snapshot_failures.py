"""Snapshot failure modes: every broken snapshot restores *nothing*,
warns with the named failure class, and falls back to a cold start."""

from __future__ import annotations

import json

import pytest

from repro.core.streaming import StreamingLinker
from repro.data import Record
from repro.store import (
    SnapshotDigestMismatch,
    SnapshotMissing,
    SnapshotTruncated,
    SnapshotVersionSkew,
    read_snapshot,
)


def _records(side):
    jitter = 0.0 if side == "left" else 1.1e-4
    return [
        Record(f"e{i}", 37.6 + i * 0.01 + jitter, -122.4 + jitter, 100.0 + i)
        for i in range(6)
    ]


@pytest.fixture()
def snapshot_root(tmp_path):
    linker = StreamingLinker(0.0)
    linker.observe("left", _records("left"))
    linker.observe("right", _records("right"))
    linker.relink()
    root = tmp_path / "snaps"
    linker.save(root)
    return root


def _snap_dir(root):
    return sorted(root.glob("snap-*"))[-1]


def test_missing_root_is_a_silent_cold_start(tmp_path):
    assert StreamingLinker.restore(tmp_path / "nowhere") is None


def test_truncated_manifest_warns_by_name_and_cold_starts(snapshot_root):
    manifest = _snap_dir(snapshot_root) / "manifest.json"
    manifest.write_text(manifest.read_text()[: len(manifest.read_text()) // 2])
    with pytest.raises(SnapshotTruncated):
        read_snapshot(snapshot_root)
    with pytest.warns(RuntimeWarning, match="SnapshotTruncated"):
        assert StreamingLinker.restore(snapshot_root) is None


def test_missing_manifest_is_truncated(snapshot_root):
    (_snap_dir(snapshot_root) / "manifest.json").unlink()
    with pytest.raises(SnapshotTruncated):
        read_snapshot(snapshot_root)
    with pytest.warns(RuntimeWarning, match="SnapshotTruncated"):
        assert StreamingLinker.restore(snapshot_root) is None


def test_missing_payload_is_truncated(snapshot_root):
    (_snap_dir(snapshot_root) / "state.pkl").unlink()
    with pytest.warns(RuntimeWarning, match="SnapshotTruncated"):
        assert StreamingLinker.restore(snapshot_root) is None


def test_digest_mismatch_warns_by_name_and_cold_starts(snapshot_root):
    state = _snap_dir(snapshot_root) / "state.pkl"
    blob = bytearray(state.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    state.write_bytes(bytes(blob))
    with pytest.raises(SnapshotDigestMismatch):
        read_snapshot(snapshot_root)
    with pytest.warns(RuntimeWarning, match="SnapshotDigestMismatch"):
        assert StreamingLinker.restore(snapshot_root) is None


def test_version_skew_warns_by_name_and_cold_starts(snapshot_root):
    manifest_path = _snap_dir(snapshot_root) / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["format"] = 999
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(SnapshotVersionSkew):
        read_snapshot(snapshot_root)
    with pytest.warns(RuntimeWarning, match="SnapshotVersionSkew"):
        assert StreamingLinker.restore(snapshot_root) is None


def test_tmp_litter_only_is_missing_with_litter_warning(tmp_path):
    root = tmp_path / "snaps"
    litter = root / "snap-000001.tmp-12345"
    litter.mkdir(parents=True)
    (litter / "state.pkl").write_bytes(b"partial")
    with pytest.warns(RuntimeWarning, match="tmp litter"):
        with pytest.raises(SnapshotMissing):
            read_snapshot(root)
    with pytest.warns(RuntimeWarning, match="tmp litter"):
        assert StreamingLinker.restore(root) is None


def test_litter_beside_a_good_snapshot_warns_but_restores(snapshot_root):
    litter = snapshot_root / "snap-000099.tmp-777"
    litter.mkdir()
    (litter / "state.pkl").write_bytes(b"partial")
    with pytest.warns(RuntimeWarning, match="tmp litter"):
        restored = StreamingLinker.restore(snapshot_root)
    assert restored is not None
    assert restored.last_relink is not None


def test_strict_restore_raises_instead_of_warning(snapshot_root):
    state = _snap_dir(snapshot_root) / "state.pkl"
    blob = bytearray(state.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    state.write_bytes(bytes(blob))
    with pytest.raises(SnapshotDigestMismatch):
        StreamingLinker.restore(snapshot_root, strict=True)

"""Unit tests for the synthetic world generators."""

import numpy as np
import pytest

from repro.data.synth import (
    CheckinWorld,
    CityModel,
    TaxiWorld,
    WorldModel,
    default_cab_world,
    default_sm_world,
)
from repro.geo import LatLng


@pytest.fixture(scope="module")
def city() -> CityModel:
    return CityModel.generate(
        "testville",
        LatLng.from_degrees(37.7749, -122.4194),
        radius_meters=10_000.0,
        num_venues=200,
        rng=np.random.default_rng(5),
    )


class TestCityModel:
    def test_num_venues(self, city):
        assert city.num_venues == 200

    def test_venues_near_center(self, city):
        for index in range(0, 200, 20):
            venue = city.venue_latlng(index)
            # Districts are inside 0.8 * radius with ~20% sigma; allow slack.
            assert city.center.distance_meters(venue) < 25_000.0

    def test_weights_normalised(self, city):
        assert city.venue_weights.sum() == pytest.approx(1.0)

    def test_popularity_is_skewed(self, city):
        rng = np.random.default_rng(6)
        draws = city.sample_venues(5_000, rng)
        _, counts = np.unique(draws, return_counts=True)
        # Zipf: the most popular venue should be much hotter than the median.
        assert counts.max() > 5 * np.median(counts)

    def test_invalid_venue_count(self):
        with pytest.raises(ValueError):
            CityModel.generate("bad", LatLng.from_degrees(0, 0), num_venues=0)

    def test_deterministic_with_rng(self):
        a = CityModel.generate("a", LatLng.from_degrees(10, 10), rng=np.random.default_rng(1))
        b = CityModel.generate("a", LatLng.from_degrees(10, 10), rng=np.random.default_rng(1))
        assert np.array_equal(a.venue_lats, b.venue_lats)


class TestWorldModel:
    def test_generate_default_cities(self):
        world = WorldModel.generate(rng=np.random.default_rng(7), venues_per_city=50)
        assert world.num_cities == 8
        assert world.city_weights.sum() == pytest.approx(1.0)

    def test_sample_city_in_range(self):
        world = WorldModel.generate(rng=np.random.default_rng(8), venues_per_city=20)
        rng = np.random.default_rng(9)
        for _ in range(20):
            assert 0 <= world.sample_city(rng) < world.num_cities


class TestTaxiWorld:
    def test_generates_expected_density(self, city):
        world = TaxiWorld(
            city=city, num_taxis=5, duration_seconds=43_200, sample_period_seconds=180, seed=3
        )
        dataset = world.generate()
        assert dataset.num_entities == 5
        average = dataset.num_records / 5
        expected = world.expected_records_per_taxi()
        assert 0.4 * expected < average < 1.5 * expected

    def test_speed_bound_respected(self, city):
        world = TaxiWorld(
            city=city,
            num_taxis=3,
            duration_seconds=21_600,
            sample_period_seconds=120,
            max_speed_mps=12.0,
            gps_noise_meters=0.0,
            seed=4,
        )
        dataset = world.generate()
        for entity in dataset.entities:
            timestamps, lats, lngs = dataset.columns(entity)
            for k in range(1, len(timestamps)):
                gap = timestamps[k] - timestamps[k - 1]
                if gap <= 0:
                    continue
                distance = LatLng.from_degrees(lats[k - 1], lngs[k - 1]).distance_meters(
                    LatLng.from_degrees(lats[k], lngs[k])
                )
                # Timestamps have +-5 s jitter; add margin for it.
                assert distance / gap < world.max_speed_mps * 1.6 + 1.0

    def test_records_in_city(self, city):
        dataset = TaxiWorld(
            city=city, num_taxis=3, duration_seconds=10_800, seed=5
        ).generate()
        for record in dataset.records():
            point = LatLng.from_degrees(record.lat, record.lng)
            assert city.center.distance_meters(point) < 40_000.0

    def test_deterministic(self, city):
        a = TaxiWorld(city=city, num_taxis=2, duration_seconds=7_200, seed=6).generate()
        b = TaxiWorld(city=city, num_taxis=2, duration_seconds=7_200, seed=6).generate()
        assert a.num_records == b.num_records

    def test_invalid_params(self, city):
        with pytest.raises(ValueError):
            TaxiWorld(city=city, num_taxis=0)
        with pytest.raises(ValueError):
            TaxiWorld(city=city, min_speed_mps=10.0, max_speed_mps=5.0)
        with pytest.raises(ValueError):
            TaxiWorld(city=city, duration_seconds=-1.0)

    def test_default_cab_world_factory(self):
        dataset = default_cab_world(num_taxis=4, duration_days=0.25).generate()
        assert dataset.num_entities == 4
        assert dataset.num_records > 50


class TestCheckinWorld:
    def test_sparse_density(self):
        world = default_sm_world(num_users=50, duration_days=5.0)
        dataset = world.generate()
        assert dataset.num_entities == 50
        average = dataset.num_records / 50
        assert 10 < average < 60  # Poisson around events_per_user_mean

    def test_users_have_home_city_concentration(self):
        world = default_sm_world(num_users=30, duration_days=5.0, seed=21)
        dataset = world.generate()
        spread_out = 0
        for entity in dataset.entities:
            _, lats, lngs = dataset.columns(entity)
            center = LatLng.from_degrees(float(np.median(lats)), float(np.median(lngs)))
            distances = [
                center.distance_meters(LatLng.from_degrees(a, b))
                for a, b in zip(lats, lngs)
            ]
            # Most records should cluster near the home city (median point).
            near = sum(1 for d in distances if d < 50_000)
            if near < 0.6 * len(distances):
                spread_out += 1
        assert spread_out <= 3

    def test_two_services_pair(self):
        world = default_sm_world(num_users=120, duration_days=6.0, seed=22)
        pair = world.two_services(intersection_ratio=0.5, inclusion_probability=0.8, min_records=2)
        assert pair.num_common > 10
        assert abs(pair.left.num_entities - pair.right.num_entities) <= 5

    def test_invalid_params(self):
        world = WorldModel.generate(rng=np.random.default_rng(1), venues_per_city=10)
        with pytest.raises(ValueError):
            CheckinWorld(world=world, num_users=0)
        with pytest.raises(ValueError):
            CheckinWorld(world=world, events_per_user_mean=0)
        with pytest.raises(ValueError):
            CheckinWorld(world=world, favorite_probability=2.0)

    def test_deterministic(self):
        a = default_sm_world(num_users=20, duration_days=3.0, seed=5).generate()
        b = default_sm_world(num_users=20, duration_days=3.0, seed=5).generate()
        assert a.num_records == b.num_records

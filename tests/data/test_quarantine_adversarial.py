"""Adversarially malformed input rows through the loaders' quarantine path.

Every loader is fed a file interleaving clean rows with hostile ones —
NaN coordinates, out-of-range lat/lng, unparsable timestamps, truncated
lines — under ``on_error="skip"``.  The contract: every hostile row is
quarantined with a usable reason, every clean row loads, and the
resulting dataset is *identical* to loading the clean file — so a
downstream linkage run cannot be perturbed by garbage rows.
"""

import pytest

from repro.data import save_csv
from repro.data.io import (
    QuarantineReport,
    load_csv,
    load_geolife,
    load_gowalla,
)
from repro.pipeline import LinkagePipeline
from repro.pipeline.config import LinkageConfig
from repro.scenarios import scenario_pair

CLEAN_CSV_ROWS = [
    "a,37.77,-122.42,1500000000",
    "a,37.78,-122.41,1500000600",
    "b,37.70,-122.45,1500000300",
    "b,37.71,-122.44,1500000900",
]

ADVERSARIAL_CSV_ROWS = [
    "evil,nan,-122.42,1500000000",          # NaN latitude
    "evil,37.77,nan,1500000060",            # NaN longitude
    "evil,95.0,-122.42,1500000120",         # latitude out of range
    "evil,-91.5,-122.42,1500000180",        # latitude out of range (south)
    "evil,37.77,200.0,1500000240",          # longitude out of range
    "evil,37.77,-181.0,1500000300",         # longitude out of range (west)
    "evil,not_a_float,-122.42,1500000360",  # unparsable latitude
    "evil,37.77,-122.42,12:00:00T2010-01-01",  # reversed/garbled timestamp
    "evil,37.77,-122.42,never o'clock",     # unparsable timestamp
]


def write_csv(path, rows):
    path.write_text("\n".join(["entity,lat,lng,timestamp", *rows]) + "\n")
    return path


class TestCsvQuarantine:
    @pytest.fixture()
    def loaded(self, tmp_path):
        dirty = CLEAN_CSV_ROWS[:2] + ADVERSARIAL_CSV_ROWS + CLEAN_CSV_ROWS[2:]
        dataset, report = load_csv(
            write_csv(tmp_path / "dirty.csv", dirty), on_error="skip"
        )
        return dataset, report

    def test_every_adversarial_row_quarantined(self, loaded):
        dataset, report = loaded
        assert isinstance(report, QuarantineReport)
        assert report.skipped == len(ADVERSARIAL_CSV_ROWS)
        assert report.loaded == len(CLEAN_CSV_ROWS)
        assert dataset.num_records == len(CLEAN_CSV_ROWS)
        assert sorted(dataset.entities) == ["a", "b"]

    def test_reasons_are_machine_checkable(self, loaded):
        _, report = loaded
        reasons = report.reasons()
        assert sum(reasons.values()) == report.skipped
        out_of_range = sum(
            count for reason, count in reasons.items() if "out of range" in reason
        )
        malformed = sum(
            count for reason, count in reasons.items() if reason.startswith("malformed")
        )
        # NaN coords fail the range comparison, so they land there too.
        assert out_of_range == 6
        assert malformed == 3

    def test_rows_carry_forensics(self, loaded):
        _, report = loaded
        for row in report.rows:
            assert row.source.endswith("dirty.csv")
            assert row.line >= 2  # 1 is the header
            assert "evil" in row.raw

    def test_dataset_identical_to_clean_load(self, loaded, tmp_path):
        dirty_dataset, _ = loaded
        clean = load_csv(
            write_csv(tmp_path / "clean.csv", CLEAN_CSV_ROWS), name="dirty"
        )
        assert dirty_dataset.entities == clean.entities
        for entity in clean.entities:
            for a, b in zip(
                dirty_dataset.columns(entity), clean.columns(entity)
            ):
                assert (a == b).all()

    def test_descending_timestamps_are_sorted_not_quarantined(self, tmp_path):
        reversed_rows = list(reversed(CLEAN_CSV_ROWS))
        dataset, report = load_csv(
            write_csv(tmp_path / "rev.csv", reversed_rows), on_error="skip"
        )
        assert report.skipped == 0
        for entity in dataset.entities:
            timestamps = dataset.columns(entity)[0]
            assert (timestamps[:-1] <= timestamps[1:]).all()

    def test_raise_mode_stops_at_first_bad_row(self, tmp_path):
        path = write_csv(
            tmp_path / "dirty.csv", CLEAN_CSV_ROWS[:1] + ADVERSARIAL_CSV_ROWS[:1]
        )
        with pytest.raises(ValueError, match="out of range"):
            load_csv(path)


class TestGowallaQuarantine:
    CLEAN = [
        "u1\t2010-10-19T23:55:27Z\t30.23\t-97.79\t22847",
        "u1\t2010-10-18T22:17:43Z\t30.26\t-97.76\t420315",
        "u2\t2010-10-17T23:42:03Z\t30.25\t-97.75\t316637",
    ]
    ADVERSARIAL = [
        "u9\t2010-10-19T23:55:27Z\tnan\t-97.79\t1",       # NaN latitude
        "u9\t2010-10-19T23:55:27Z\t30.23\t999.0\t2",      # lng out of range
        "u9\t23:55:27T2010-10-19\t30.23\t-97.79\t3",      # garbled timestamp
        "u9\t2010-10-19T23:55:27Z",                        # truncated line
    ]

    def test_adversarial_checkins_quarantined(self, tmp_path):
        path = tmp_path / "checkins.txt"
        path.write_text("\n".join(self.CLEAN + self.ADVERSARIAL) + "\n")
        dataset, report = load_gowalla(path, on_error="skip")
        assert report.loaded == len(self.CLEAN)
        assert report.skipped == len(self.ADVERSARIAL)
        assert sorted(dataset.entities) == ["u1", "u2"]
        assert "truncated row" in report.reasons()

    def test_raise_mode_rejects_nan(self, tmp_path):
        path = tmp_path / "checkins.txt"
        path.write_text("\n".join(self.CLEAN + self.ADVERSARIAL[:1]) + "\n")
        with pytest.raises(ValueError, match="out of range"):
            load_gowalla(path)


class TestGeolifeQuarantine:
    HEADER = ["Geolife trajectory", "WGS 84", "Altitude is in Feet",
              "Reserved 3", "0,2,255,My Track,0,0,2182631065", "0"]
    CLEAN = [
        "39.984702,116.318417,0,492,39744.12,2008-10-23,02:53:04",
        "39.984683,116.318450,0,492,39744.12,2008-10-23,02:53:10",
    ]
    ADVERSARIAL = [
        "nan,116.318417,0,492,39744.12,2008-10-23,02:53:16",   # NaN latitude
        "139.9,116.3,0,492,39744.12,2008-10-23,02:53:22",      # lat out of range
        "39.98,116.31,0,492,39744.12,02:53:28,2008-10-23",     # reversed date/time
        "39.98,116.31",                                        # truncated row
    ]

    def _tree(self, tmp_path, rows):
        trajectory = tmp_path / "Data" / "000" / "Trajectory"
        trajectory.mkdir(parents=True)
        (trajectory / "20081023025304.plt").write_text(
            "\n".join(self.HEADER + rows) + "\n"
        )
        return tmp_path

    def test_adversarial_points_quarantined(self, tmp_path):
        root = self._tree(tmp_path, self.CLEAN + self.ADVERSARIAL)
        dataset, report = load_geolife(root, on_error="skip")
        assert report.loaded == len(self.CLEAN)
        assert report.skipped == len(self.ADVERSARIAL)
        assert list(dataset.entities) == ["000"]
        assert "truncated row" in report.reasons()


class TestEndToEndThroughPipeline:
    def test_linkage_unperturbed_by_quarantined_rows(self, tmp_path):
        """A full pipeline run over CSVs polluted with adversarial rows
        must produce exactly the links of the clean run."""
        pair = scenario_pair("baseline_cab", seed=7, scale=0.5)
        left_path = tmp_path / "left.csv"
        right_path = tmp_path / "right.csv"
        save_csv(pair.left, left_path)
        save_csv(pair.right, right_path)

        clean_report = LinkagePipeline(LinkageConfig()).run(
            load_csv(left_path, name="left"), load_csv(right_path, name="right")
        )

        poison = "\n".join(ADVERSARIAL_CSV_ROWS) + "\n"
        dirty_left = tmp_path / "dirty_left.csv"
        dirty_left.write_text(left_path.read_text() + poison)
        dirty_right = tmp_path / "dirty_right.csv"
        dirty_right.write_text(right_path.read_text() + poison)

        left, left_quarantine = load_csv(
            dirty_left, name="left", on_error="skip"
        )
        right, right_quarantine = load_csv(
            dirty_right, name="right", on_error="skip"
        )
        assert left_quarantine.skipped == len(ADVERSARIAL_CSV_ROWS)
        assert right_quarantine.skipped == len(ADVERSARIAL_CSV_ROWS)

        dirty_report = LinkagePipeline(LinkageConfig()).run(left, right)
        assert dict(dirty_report.links) == dict(clean_report.links)
        dirty_scores = {(e.left, e.right): e.weight for e in dirty_report.edges}
        clean_scores = {(e.left, e.right): e.weight for e in clean_report.edges}
        assert dirty_scores == clean_scores

"""Unit tests for dataset loaders and writers."""

import pytest

from repro.data import (
    LocationDataset,
    QuarantineReport,
    Record,
    load_csv,
    load_geolife,
    load_gowalla,
    save_csv,
)


@pytest.fixture()
def dataset() -> LocationDataset:
    return LocationDataset.from_records(
        [
            Record("u1", 37.5, -122.25, 1000.5),
            Record("u1", 37.6, -122.35, 2000.0),
            Record("u2", 40.0, -74.0, 1500.0),
        ],
        "io-test",
    )


class TestCsv:
    def test_roundtrip(self, dataset, tmp_path):
        path = tmp_path / "data.csv"
        save_csv(dataset, path)
        loaded = load_csv(path)
        assert loaded.num_entities == dataset.num_entities
        assert loaded.num_records == dataset.num_records
        original = sorted(dataset.records())
        recovered = sorted(loaded.records())
        for a, b in zip(original, recovered):
            assert a.entity_id == b.entity_id
            assert a.lat == pytest.approx(b.lat, abs=1e-6)
            assert a.timestamp == pytest.approx(b.timestamp, abs=1e-3)

    def test_iso_timestamps(self, tmp_path):
        path = tmp_path / "iso.csv"
        path.write_text(
            "entity,lat,lng,timestamp\n"
            "u1,37.5,-122.3,2017-10-03T12:00:00Z\n"
            "u1,37.6,-122.2,2017-10-03 13:30:00\n"
        )
        loaded = load_csv(path)
        timestamps = [r.timestamp for r in loaded.records_of("u1")]
        assert timestamps[1] - timestamps[0] == pytest.approx(5400.0)

    def test_missing_column_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("entity,lat,lng\nu1,1.0,2.0\n")
        with pytest.raises(ValueError):
            load_csv(path)

    def test_custom_columns(self, tmp_path):
        path = tmp_path / "custom.csv"
        path.write_text("uid;latitude;longitude;ts\nu1;1.0;2.0;100\n")
        loaded = load_csv(
            path,
            delimiter=";",
            entity_column="uid",
            lat_column="latitude",
            lng_column="longitude",
            time_column="ts",
        )
        assert loaded.num_records == 1

    def test_name_defaults_to_stem(self, dataset, tmp_path):
        path = tmp_path / "mystem.csv"
        save_csv(dataset, path)
        assert load_csv(path).name == "mystem"


class TestGeolife:
    def _write_plt(self, path, rows):
        header = "\n".join(["Geolife trajectory", "WGS 84", "Altitude is in Feet", "Reserved 3", "0,2,255,My Track,0,0,2,8421376", "0"])
        lines = [header]
        for lat, lng, date, time_ in rows:
            lines.append(f"{lat},{lng},0,100,39000.0,{date},{time_}")
        path.write_text("\n".join(lines) + "\n")

    def test_load_layout(self, tmp_path):
        user_dir = tmp_path / "Data" / "000" / "Trajectory"
        user_dir.mkdir(parents=True)
        self._write_plt(
            user_dir / "t1.plt",
            [(39.9, 116.3, "2008-10-23", "02:53:04"), (39.91, 116.31, "2008-10-23", "02:54:04")],
        )
        loaded = load_geolife(tmp_path)
        assert loaded.num_entities == 1
        assert loaded.num_records == 2
        assert "000" in loaded

    def test_load_without_data_level(self, tmp_path):
        user_dir = tmp_path / "007" / "Trajectory"
        user_dir.mkdir(parents=True)
        self._write_plt(user_dir / "a.plt", [(1.0, 2.0, "2010-01-01", "00:00:00")])
        loaded = load_geolife(tmp_path)
        assert loaded.entities == ["007"]

    def test_max_users(self, tmp_path):
        for user in ("000", "001", "002"):
            d = tmp_path / "Data" / user / "Trajectory"
            d.mkdir(parents=True)
            self._write_plt(d / "a.plt", [(1.0, 2.0, "2010-01-01", "00:00:00")])
        loaded = load_geolife(tmp_path, max_users=2)
        assert loaded.num_entities == 2

    def test_empty_raises(self, tmp_path):
        (tmp_path / "Data").mkdir()
        with pytest.raises(ValueError):
            load_geolife(tmp_path)


class TestGowalla:
    def test_load(self, tmp_path):
        path = tmp_path / "checkins.txt"
        path.write_text(
            "0\t2010-10-19T23:55:27Z\t30.2359\t-97.7951\t22847\n"
            "0\t2010-10-18T22:17:43Z\t30.2691\t-97.7494\t420315\n"
            "1\t2010-10-17T23:42:03Z\t40.6438\t-73.7828\t316637\n"
        )
        loaded = load_gowalla(path)
        assert loaded.num_entities == 2
        assert loaded.record_count("0") == 2

    def test_max_records(self, tmp_path):
        path = tmp_path / "checkins.txt"
        path.write_text(
            "\n".join(f"{k}\t2010-01-01T00:00:00Z\t1.0\t2.0\t{k}" for k in range(10))
        )
        loaded = load_gowalla(path, max_records=4)
        assert loaded.num_records == 4

    def test_short_lines_skipped(self, tmp_path):
        path = tmp_path / "checkins.txt"
        path.write_text("0\t2010-01-01T00:00:00Z\t1.0\t2.0\t5\nbroken line\n")
        assert load_gowalla(path).num_records == 1

    def test_empty_raises(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        with pytest.raises(ValueError):
            load_gowalla(path)


class TestQuarantine:
    """on_error="skip": malformed and out-of-range rows are quarantined
    into a returned report instead of aborting the load."""

    def test_invalid_on_error_rejected(self, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("entity,lat,lng,timestamp\n")
        with pytest.raises(ValueError, match="on_error"):
            load_csv(path, on_error="ignore")

    def test_csv_raise_mode_fails_on_malformed_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "entity,lat,lng,timestamp\nu1,not-a-float,2.0,100\n"
        )
        with pytest.raises(ValueError, match="malformed"):
            load_csv(path)

    def test_csv_raise_mode_fails_on_out_of_range(self, tmp_path):
        path = tmp_path / "oob.csv"
        path.write_text("entity,lat,lng,timestamp\nu1,95.0,2.0,100\n")
        with pytest.raises(ValueError, match="latitude out of range"):
            load_csv(path)

    def test_csv_skip_mode_quarantines(self, tmp_path):
        path = tmp_path / "mixed.csv"
        path.write_text(
            "entity,lat,lng,timestamp\n"
            "u1,1.0,2.0,100\n"
            "u2,not-a-float,2.0,100\n"  # malformed latitude
            "u3,95.0,2.0,100\n"  # latitude out of range
            "u4,1.0,200.0,100\n"  # longitude out of range
            "u5,1.0,2.0,whenever\n"  # malformed timestamp
            "u6,3.0,4.0,200\n"
        )
        dataset, report = load_csv(path, on_error="skip")
        assert isinstance(report, QuarantineReport)
        assert dataset.entities == ["u1", "u6"]
        assert report.loaded == 2
        assert report.skipped == 4
        assert [row.line for row in report.rows] == [3, 4, 5, 6]
        reasons = report.reasons()
        assert sum(reasons.values()) == 4
        assert any("out of range" in reason for reason in reasons)
        assert report.rows[0].source == str(path)
        assert "not-a-float" in report.rows[0].raw

    def test_csv_skip_mode_still_rejects_bad_header(self, tmp_path):
        path = tmp_path / "headerless.csv"
        path.write_text("entity,lat\nu1,1.0\n")
        with pytest.raises(ValueError, match="header"):
            load_csv(path, on_error="skip")

    def test_geolife_skip_mode_quarantines(self, tmp_path):
        user_dir = tmp_path / "Data" / "000" / "Trajectory"
        user_dir.mkdir(parents=True)
        header = "\n".join(["h1", "h2", "h3", "h4", "h5", "h6"])
        (user_dir / "a.plt").write_text(
            header + "\n"
            "39.9,116.3,0,100,39000.0,2008-10-23,02:53:04\n"
            "95.5,116.3,0,100,39000.0,2008-10-23,02:54:04\n"  # bad lat
            "nope,116.3,0,100,39000.0,2008-10-23,02:55:04\n"  # bad float
            "39.9,116.3\n"  # truncated
            "39.91,116.31,0,100,39000.0,2008-10-23,02:56:04\n"
        )
        dataset, report = load_geolife(tmp_path, on_error="skip")
        assert dataset.num_records == 2
        assert report.loaded == 2
        assert report.skipped == 3
        assert sorted(report.reasons()) == [
            "latitude out of range: 95.5",
            "malformed: could not convert string to float: 'nope'",
            "truncated row",
        ]

    def test_geolife_raise_mode_fails_on_out_of_range(self, tmp_path):
        user_dir = tmp_path / "Data" / "000" / "Trajectory"
        user_dir.mkdir(parents=True)
        header = "\n".join(["h1", "h2", "h3", "h4", "h5", "h6"])
        (user_dir / "a.plt").write_text(
            header + "\n95.5,116.3,0,100,39000.0,2008-10-23,02:54:04\n"
        )
        with pytest.raises(ValueError, match="latitude out of range"):
            load_geolife(tmp_path)

    def test_gowalla_skip_mode_quarantines(self, tmp_path):
        path = tmp_path / "checkins.txt"
        path.write_text(
            "0\t2010-10-19T23:55:27Z\t30.2359\t-97.7951\t22847\n"
            "1\t2010-10-19T23:55:27Z\t30.2359\t-191.0\t22847\n"  # bad lng
            "broken line\n"  # truncated
            "2\tlater\t30.0\t-97.0\t5\n"  # malformed timestamp
            "3\t2010-10-19T23:55:27Z\t40.0\t-73.0\t6\n"
        )
        dataset, report = load_gowalla(path, on_error="skip")
        assert dataset.entities == ["0", "3"]
        assert report.loaded == 2
        assert report.skipped == 3
        assert [row.line for row in report.rows] == [2, 3, 4]

    def test_gowalla_all_rows_quarantined_returns_empty(self, tmp_path):
        path = tmp_path / "allbad.txt"
        path.write_text("0\t2010-01-01T00:00:00Z\t99.0\t0.0\t1\n")
        dataset, report = load_gowalla(path, on_error="skip")
        assert dataset.num_records == 0
        assert report.loaded == 0
        assert report.skipped == 1

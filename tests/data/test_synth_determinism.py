"""Same-seed byte-identity of the synthetic world generators.

The scenario zoo regenerates worlds inside executor workers from nothing
but a seed, so "same seed, same dataset" must hold to the byte — not just
to record counts.  These tests also pin the RNG plumbing audit: every
generator accepts an explicit :class:`numpy.random.Generator`, and no
generator falls back to an *unseeded* ``default_rng()``.
"""

import numpy as np

from repro.data import LocationDataset
from repro.data.synth import (
    CheckinWorld,
    CityModel,
    TaxiWorld,
    WorldModel,
    default_cab_world,
    default_sm_world,
)
from repro.geo import LatLng


def dataset_bytes(dataset: LocationDataset) -> bytes:
    """A canonical byte serialisation of a dataset (ids + columns)."""
    chunks = []
    for entity in dataset.entities:
        timestamps, lats, lngs = dataset.columns(entity)
        chunks.append(entity.encode())
        chunks.extend(a.tobytes() for a in (timestamps, lats, lngs))
    return b"".join(chunks)


class TestCityDeterminism:
    def test_city_without_rng_is_reproducible(self):
        a = CityModel.generate("byteville", LatLng.from_degrees(10.0, 20.0))
        b = CityModel.generate("byteville", LatLng.from_degrees(10.0, 20.0))
        assert np.array_equal(a.venue_lats, b.venue_lats)
        assert np.array_equal(a.venue_lngs, b.venue_lngs)
        assert np.array_equal(a.venue_weights, b.venue_weights)

    def test_city_default_stream_depends_on_name(self):
        a = CityModel.generate("alpha", LatLng.from_degrees(10.0, 20.0))
        b = CityModel.generate("beta", LatLng.from_degrees(10.0, 20.0))
        assert not np.array_equal(a.venue_lats, b.venue_lats)

    def test_world_without_rng_is_reproducible(self):
        a = WorldModel.generate(venues_per_city=20)
        b = WorldModel.generate(venues_per_city=20)
        for city_a, city_b in zip(a.cities, b.cities):
            assert np.array_equal(city_a.venue_lats, city_b.venue_lats)
        assert np.array_equal(a.city_weights, b.city_weights)


class TestTaxiDeterminism:
    def test_same_seed_same_bytes(self):
        world = default_cab_world(num_taxis=6, duration_days=0.25, seed=13)
        assert dataset_bytes(world.generate()) == dataset_bytes(world.generate())

    def test_factory_same_seed_same_bytes(self):
        a = default_cab_world(num_taxis=5, duration_days=0.25, seed=3).generate()
        b = default_cab_world(num_taxis=5, duration_days=0.25, seed=3).generate()
        assert dataset_bytes(a) == dataset_bytes(b)

    def test_explicit_rng_matches_seed_default(self):
        world = default_cab_world(num_taxis=4, duration_days=0.25, seed=9)
        implicit = world.generate()
        explicit = world.generate(rng=np.random.default_rng(9))
        assert dataset_bytes(implicit) == dataset_bytes(explicit)

    def test_different_seeds_differ(self):
        a = default_cab_world(num_taxis=4, duration_days=0.25, seed=1).generate()
        b = default_cab_world(num_taxis=4, duration_days=0.25, seed=2).generate()
        assert dataset_bytes(a) != dataset_bytes(b)

    def test_explicit_rng_controls_the_whole_stream(self):
        world = default_cab_world(num_taxis=4, duration_days=0.25, seed=9)
        a = world.generate(rng=np.random.default_rng(42))
        b = world.generate(rng=np.random.default_rng(42))
        assert dataset_bytes(a) == dataset_bytes(b)
        assert isinstance(world, TaxiWorld)


class TestCheckinDeterminism:
    def test_same_seed_same_bytes(self):
        world = default_sm_world(num_users=25, duration_days=3.0, seed=17)
        assert dataset_bytes(world.generate()) == dataset_bytes(world.generate())

    def test_explicit_rng_matches_seed_default(self):
        world = default_sm_world(num_users=20, duration_days=3.0, seed=17)
        implicit = world.generate()
        explicit = world.generate(rng=np.random.default_rng(17))
        assert dataset_bytes(implicit) == dataset_bytes(explicit)
        assert isinstance(world, CheckinWorld)

    def test_two_services_same_seed_identical_pair(self):
        world = default_sm_world(num_users=60, duration_days=4.0, seed=23)
        a = world.two_services(seed=5, min_records=2)
        b = world.two_services(seed=5, min_records=2)
        assert dataset_bytes(a.left) == dataset_bytes(b.left)
        assert dataset_bytes(a.right) == dataset_bytes(b.right)
        assert a.ground_truth == b.ground_truth

    def test_two_services_explicit_rng_overrides_seed(self):
        world = default_sm_world(num_users=60, duration_days=4.0, seed=23)
        a = world.two_services(rng=np.random.default_rng(5), min_records=2)
        b = world.two_services(seed=5, min_records=2)
        assert dataset_bytes(a.left) == dataset_bytes(b.left)
        assert a.ground_truth == b.ground_truth

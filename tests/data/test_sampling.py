"""Unit tests for the paper's experimental sampling protocol."""

import numpy as np
import pytest

from repro.data import (
    LocationDataset,
    pair_from_two_sources,
    sample_linkage_pair,
)


def _world(num_entities: int, records_per_entity: int = 40) -> LocationDataset:
    rng = np.random.default_rng(99)
    per_entity = {}
    ids = [f"w{k:04d}" for k in range(num_entities)]
    for entity in ids:
        timestamps = np.sort(rng.uniform(0, 86_400, records_per_entity))
        lats = rng.uniform(37.0, 38.0, records_per_entity)
        lngs = rng.uniform(-123.0, -122.0, records_per_entity)
        per_entity[entity] = (timestamps, lats, lngs)
    return LocationDataset.from_arrays(ids, per_entity, "world")


class TestSampleLinkagePair:
    def test_paper_ratio_example(self):
        """530 entities at ratio 0.5 -> two sides of 265 with 132-133 common,
        the dataset shape quoted in Sec. 5.1."""
        world = _world(530, records_per_entity=12)
        pair = sample_linkage_pair(world, 0.5, 1.0, rng=1, min_records=5)
        assert pair.left.num_entities == 265
        assert pair.right.num_entities == 265
        assert pair.num_common in (132, 133)

    def test_intersection_ratio_zero(self):
        pair = sample_linkage_pair(_world(40), 0.0, 1.0, rng=2, min_records=0)
        assert pair.num_common == 0
        assert pair.left.num_entities == pair.right.num_entities == 20

    def test_intersection_ratio_one(self):
        pair = sample_linkage_pair(_world(40), 1.0, 1.0, rng=3, min_records=0)
        assert pair.num_common == pair.left.num_entities == pair.right.num_entities

    def test_invalid_ratio_raises(self):
        with pytest.raises(ValueError):
            sample_linkage_pair(_world(10), 1.5, 0.5)

    def test_anonymised_ids_are_opaque(self):
        pair = sample_linkage_pair(_world(30), 0.5, 1.0, rng=4, min_records=0)
        assert all(e.startswith("L") for e in pair.left.entities)
        assert all(e.startswith("R") for e in pair.right.entities)
        for left, right in pair.ground_truth.items():
            assert left in pair.left
            assert right in pair.right

    def test_without_anonymisation_truth_is_identity(self):
        pair = sample_linkage_pair(
            _world(30), 0.5, 1.0, rng=4, min_records=0, anonymize=False
        )
        assert all(left == right for left, right in pair.ground_truth.items())

    def test_inclusion_probability_thins_records(self):
        world = _world(30, records_per_entity=100)
        dense = sample_linkage_pair(world, 0.5, 0.9, rng=5, min_records=0)
        sparse = sample_linkage_pair(world, 0.5, 0.2, rng=5, min_records=0)
        assert sparse.left.num_records < dense.left.num_records

    def test_min_records_filter_applies(self):
        world = _world(30, records_per_entity=8)
        pair = sample_linkage_pair(world, 0.5, 0.4, rng=6, min_records=5)
        for dataset in (pair.left, pair.right):
            for entity in dataset.entities:
                assert dataset.record_count(entity) > 5

    def test_ground_truth_only_surviving_entities(self):
        world = _world(30, records_per_entity=8)
        pair = sample_linkage_pair(world, 1.0, 0.3, rng=7, min_records=5)
        for left, right in pair.ground_truth.items():
            assert left in pair.left
            assert right in pair.right

    def test_reproducible_with_seed(self):
        world = _world(30)
        a = sample_linkage_pair(world, 0.5, 0.5, rng=42)
        b = sample_linkage_pair(world, 0.5, 0.5, rng=42)
        assert a.ground_truth == b.ground_truth
        assert a.left.num_records == b.left.num_records

    def test_asymmetric_inclusion(self):
        world = _world(30, records_per_entity=100)
        pair = sample_linkage_pair(
            world, 0.5, 0.9, rng=8, min_records=0, right_inclusion_probability=0.1
        )
        assert pair.right.num_records < pair.left.num_records / 3

    def test_describe_mentions_counts(self):
        pair = sample_linkage_pair(_world(30), 0.5, 1.0, rng=9, min_records=0)
        text = pair.describe()
        assert "common" in text

    def test_too_few_entities_raises(self):
        with pytest.raises(ValueError):
            sample_linkage_pair(_world(1), 0.5, 0.5)


class TestPairFromTwoSources:
    def test_shared_world_symmetric_sides(self):
        world = _world(120)
        rng = np.random.default_rng(10)
        left_source = world.sample_records(0.8, rng).renamed("svc_a")
        right_source = world.sample_records(0.8, rng).renamed("svc_b")
        pair = pair_from_two_sources(
            left_source, right_source, 0.5, 1.0, rng=11, min_records=0
        )
        assert abs(pair.left.num_entities - pair.right.num_entities) <= 1
        expected_common = round(0.5 * pair.left.num_entities)
        assert abs(pair.num_common - expected_common) <= 2

    def test_ratio_controls_overlap(self):
        world = _world(120)
        rng = np.random.default_rng(12)
        a = world.sample_records(0.9, rng).renamed("a")
        b = world.sample_records(0.9, rng).renamed("b")
        low = pair_from_two_sources(a, b, 0.3, 1.0, rng=13, min_records=0)
        high = pair_from_two_sources(a, b, 0.9, 1.0, rng=13, min_records=0)
        assert high.num_common / high.left.num_entities > (
            low.num_common / low.left.num_entities
        )

    def test_no_shared_entities_raises(self):
        a = _world(10).renamed("a")
        b = _world(10).rename_entities(
            {e: f"other_{e}" for e in _world(10).entities}, name="b"
        )
        with pytest.raises(ValueError):
            pair_from_two_sources(a, b, 0.5, 1.0, rng=14)

    def test_ground_truth_pairs_exist_in_datasets(self):
        world = _world(60)
        rng = np.random.default_rng(15)
        a = world.sample_records(0.9, rng).renamed("a")
        b = world.sample_records(0.9, rng).renamed("b")
        pair = pair_from_two_sources(a, b, 0.5, 0.8, rng=16, min_records=2)
        for left, right in pair.ground_truth.items():
            assert left in pair.left
            assert right in pair.right

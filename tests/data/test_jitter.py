"""Unit tests for timestamp jitter (asynchronous-service modelling)."""

import numpy as np
import pytest

from repro.data import LocationDataset, sample_linkage_pair


def _dataset(records_per_entity=50, entities=6):
    rng = np.random.default_rng(3)
    per_entity = {}
    ids = [f"e{k}" for k in range(entities)]
    for entity in ids:
        timestamps = np.sort(rng.uniform(0, 86_400, records_per_entity))
        per_entity[entity] = (
            timestamps,
            rng.uniform(37.0, 38.0, records_per_entity),
            rng.uniform(-123.0, -122.0, records_per_entity),
        )
    return LocationDataset.from_arrays(ids, per_entity, "jitter-test")


class TestJitterTimestamps:
    def test_zero_sigma_is_identity(self, rng):
        dataset = _dataset()
        assert dataset.jitter_timestamps(0.0, rng) is dataset

    def test_negative_sigma_raises(self, rng):
        with pytest.raises(ValueError):
            _dataset().jitter_timestamps(-1.0, rng)

    def test_preserves_counts_and_locations(self, rng):
        dataset = _dataset()
        jittered = dataset.jitter_timestamps(60.0, rng)
        assert jittered.num_records == dataset.num_records
        assert jittered.num_entities == dataset.num_entities
        for entity in dataset.entities:
            _, lats_a, _ = dataset.columns(entity)
            _, lats_b, _ = jittered.columns(entity)
            assert sorted(lats_a.tolist()) == sorted(lats_b.tolist())

    def test_timestamps_remain_sorted(self, rng):
        jittered = _dataset().jitter_timestamps(600.0, rng)
        for entity in jittered.entities:
            timestamps, _, _ = jittered.columns(entity)
            assert (np.diff(timestamps) >= 0).all()

    def test_noise_magnitude(self, rng):
        dataset = _dataset(records_per_entity=2000, entities=1)
        jittered = dataset.jitter_timestamps(120.0, rng)
        original, _, _ = dataset.columns("e0")
        noisy, _, _ = jittered.columns("e0")
        # Sorting breaks row correspondence; compare distribution spread.
        shift = np.std(np.sort(noisy) - np.sort(original))
        assert 0.0 < shift < 360.0


class TestSamplerJitter:
    def test_jitter_applied_per_side(self):
        world = _dataset(records_per_entity=100, entities=20)
        crisp = sample_linkage_pair(world, 1.0, 1.0, rng=5, min_records=0)
        fuzzy = sample_linkage_pair(
            world, 1.0, 1.0, rng=5, min_records=0, timestamp_jitter_seconds=300.0
        )
        assert fuzzy.left.num_records == crisp.left.num_records
        # With identical sampling seeds, jitter must change the time range.
        assert fuzzy.left.time_range() != crisp.left.time_range()

    def test_jitter_reduces_synchrony(self):
        """The purpose of the knob: identical instants across the two sides
        disappear under jitter."""
        world = _dataset(records_per_entity=100, entities=20)
        crisp = sample_linkage_pair(world, 1.0, 0.8, rng=6, min_records=0)
        fuzzy = sample_linkage_pair(
            world, 1.0, 0.8, rng=6, min_records=0, timestamp_jitter_seconds=300.0
        )

        def shared_instants(pair):
            left_times = {
                round(r.timestamp, 3) for r in pair.left.records()
            }
            right_times = {
                round(r.timestamp, 3) for r in pair.right.records()
            }
            return len(left_times & right_times)

        assert shared_instants(fuzzy) < shared_instants(crisp)

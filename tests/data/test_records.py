"""Unit tests for the record/dataset model."""

import numpy as np
import pytest

from repro.data import LocationDataset, Record


@pytest.fixture()
def dataset() -> LocationDataset:
    records = [
        Record("u1", 37.0, -122.0, 100.0),
        Record("u1", 37.1, -122.1, 50.0),
        Record("u1", 37.2, -122.2, 150.0),
        Record("u2", 40.0, -74.0, 120.0),
        Record("u2", 40.1, -74.1, 80.0),
    ]
    return LocationDataset.from_records(records, "test")


class TestConstruction:
    def test_counts(self, dataset):
        assert dataset.num_entities == 2
        assert dataset.num_records == 5
        assert len(dataset) == 5

    def test_records_sorted_by_time(self, dataset):
        timestamps = [r.timestamp for r in dataset.records_of("u1")]
        assert timestamps == sorted(timestamps)

    def test_invalid_latitude_raises(self):
        with pytest.raises(ValueError):
            LocationDataset.from_records([Record("u", 91.0, 0.0, 0.0)])

    def test_invalid_longitude_raises(self):
        with pytest.raises(ValueError):
            LocationDataset.from_records([Record("u", 0.0, -181.0, 0.0)])

    def test_from_arrays(self):
        data = {
            "e1": (np.array([3.0, 1.0]), np.array([10.0, 11.0]), np.array([20.0, 21.0]))
        }
        dataset = LocationDataset.from_arrays(["e1"], data, "arr")
        timestamps, lats, _ = dataset.columns("e1")
        assert list(timestamps) == [1.0, 3.0]
        assert list(lats) == [11.0, 10.0]

    def test_from_arrays_shape_mismatch(self):
        data = {"e1": (np.zeros(2), np.zeros(3), np.zeros(2))}
        with pytest.raises(ValueError):
            LocationDataset.from_arrays(["e1"], data)

    def test_contains(self, dataset):
        assert "u1" in dataset
        assert "nope" not in dataset


class TestAccessors:
    def test_entities_order(self, dataset):
        assert dataset.entities == ["u1", "u2"]

    def test_record_count(self, dataset):
        assert dataset.record_count("u1") == 3
        assert dataset.record_count("u2") == 2

    def test_records_iterates_all(self, dataset):
        assert sum(1 for _ in dataset.records()) == 5

    def test_time_range(self, dataset):
        assert dataset.time_range() == (50.0, 150.0)

    def test_time_range_empty_raises(self):
        with pytest.raises(ValueError):
            LocationDataset("empty", {}).time_range()

    def test_stats(self, dataset):
        stats = dataset.stats()
        assert stats.num_entities == 2
        assert stats.num_records == 5
        assert stats.avg_records_per_entity == pytest.approx(2.5)
        assert stats.span_days == pytest.approx(100.0 / 86400.0)

    def test_repr(self, dataset):
        assert "entities=2" in repr(dataset)


class TestTransformations:
    def test_subset(self, dataset):
        sub = dataset.subset(["u2"])
        assert sub.entities == ["u2"]
        assert sub.num_records == 2

    def test_subset_unknown_entity(self, dataset):
        with pytest.raises(KeyError):
            dataset.subset(["ghost"])

    def test_filter_min_records(self, dataset):
        filtered = dataset.filter_min_records(2)
        assert filtered.entities == ["u1"]

    def test_filter_min_records_zero_keeps_all(self, dataset):
        assert dataset.filter_min_records(0).num_entities == 2

    def test_sample_records_probability_one(self, dataset, rng):
        sampled = dataset.sample_records(1.0, rng)
        assert sampled.num_records == dataset.num_records

    def test_sample_records_statistics(self, rng):
        big = LocationDataset.from_arrays(
            ["e"],
            {"e": (np.arange(10_000.0), np.zeros(10_000), np.zeros(10_000))},
        )
        sampled = big.sample_records(0.3, rng)
        assert 0.25 < sampled.num_records / 10_000 < 0.35

    def test_sample_records_invalid_probability(self, dataset, rng):
        with pytest.raises(ValueError):
            dataset.sample_records(0.0, rng)
        with pytest.raises(ValueError):
            dataset.sample_records(1.5, rng)

    def test_rename_entities(self, dataset):
        renamed = dataset.rename_entities({"u1": "x", "u2": "y"})
        assert set(renamed.entities) == {"x", "y"}
        assert renamed.record_count("x") == 3

    def test_rename_requires_injective(self, dataset):
        with pytest.raises(ValueError):
            dataset.rename_entities({"u1": "same", "u2": "same"})

    def test_merged_with(self, dataset):
        other = LocationDataset.from_records([Record("u3", 1.0, 1.0, 1.0)])
        merged = dataset.merged_with(other)
        assert merged.num_entities == 3

    def test_merged_with_overlap_raises(self, dataset):
        other = LocationDataset.from_records([Record("u1", 1.0, 1.0, 1.0)])
        with pytest.raises(ValueError):
            dataset.merged_with(other)

    def test_renamed(self, dataset):
        assert dataset.renamed("other").name == "other"
        assert dataset.renamed("other").num_records == dataset.num_records

"""CLI option-path tests (threshold methods, matchers, speed settings)."""

import pytest

from repro.cli import main
from repro.data import save_csv, sample_linkage_pair


@pytest.fixture(scope="module")
def small_csv_pair(tmp_path_factory, cab_world):
    tmp_path = tmp_path_factory.mktemp("cli-options")
    world = cab_world.subset(cab_world.entities[:12])
    pair = sample_linkage_pair(world, 0.5, 0.5, rng=8)
    left = tmp_path / "left.csv"
    right = tmp_path / "right.csv"
    save_csv(pair.left, left)
    save_csv(pair.right, right)
    return str(left), str(right)


class TestThresholdMethods:
    @pytest.mark.parametrize("method", ["gmm", "otsu", "two_means", "none"])
    def test_all_methods_run(self, small_csv_pair, method, capsys):
        left, right = small_csv_pair
        assert main([left, right, "--threshold-method", method]) == 0
        out = capsys.readouterr().out
        assert out.startswith("left,right,score,linked")


class TestMatchers:
    @pytest.mark.parametrize("matcher", ["greedy", "hungarian", "networkx"])
    def test_all_matchers_run(self, small_csv_pair, matcher, capsys):
        left, right = small_csv_pair
        assert main([left, right, "--matching", matcher]) == 0


class TestSimilarityKnobs:
    def test_custom_window_and_level(self, small_csv_pair, capsys):
        left, right = small_csv_pair
        assert main(
            [left, right, "--window-minutes", "30", "--spatial-level", "10"]
        ) == 0

    def test_custom_speed_and_b(self, small_csv_pair, capsys):
        left, right = small_csv_pair
        assert main([left, right, "--max-speed-kmh", "60", "--b", "0.8"]) == 0

    def test_stderr_summary_counts(self, small_csv_pair, capsys):
        left, right = small_csv_pair
        main([left, right])
        err = capsys.readouterr().err
        assert "candidate pairs" in err
        assert "bin comparisons" in err


class TestRetentionAndBlockSizeFlags:
    def test_retention_flags_reach_the_config(self, small_csv_pair):
        from repro.cli import _explicit_flags, build_parser, config_from_args

        left, right = small_csv_pair
        argv = [left, right, "--retention", "sliding_window",
                "--retention-window", "96", "--score-block-size", "512"]
        args = build_parser().parse_args(argv)
        config = config_from_args(args, _explicit_flags(argv))
        assert config.retention == "sliding_window"
        assert config.retention_window == 96
        assert config.score_block_size == 512

    def test_retention_without_window_is_a_config_error(
        self, small_csv_pair, capsys
    ):
        left, right = small_csv_pair
        code = main([left, right, "--retention", "max_entities"])
        captured = capsys.readouterr()
        assert code == 2
        assert "retention_window" in captured.err

    def test_run_with_explicit_block_size_links(self, small_csv_pair, capsys):
        left, right = small_csv_pair
        assert main([left, right, "--score-block-size", "64"]) == 0
        assert "links" in capsys.readouterr().err


class TestResilienceFlags:
    def test_timeout_and_retries_reach_the_config(self, small_csv_pair):
        from repro.cli import _explicit_flags, build_parser, config_from_args

        left, right = small_csv_pair
        argv = [left, right, "--timeout", "1.5", "--retries", "4"]
        args = build_parser().parse_args(argv)
        config = config_from_args(args, _explicit_flags(argv))
        assert config.timeout == 1.5
        assert config.retries == 4

    def test_config_file_values_survive_unset_flags(
        self, small_csv_pair, tmp_path
    ):
        from repro.cli import _explicit_flags, build_parser, config_from_args

        left, right = small_csv_pair
        config_path = tmp_path / "resilient.json"
        config_path.write_text('{"timeout": 2.0, "retries": 7}')
        argv = [left, right, "--config", str(config_path)]
        args = build_parser().parse_args(argv)
        config = config_from_args(args, _explicit_flags(argv))
        assert config.timeout == 2.0
        assert config.retries == 7

    def test_run_with_resilience_flags_links(self, small_csv_pair, capsys):
        left, right = small_csv_pair
        assert main(
            [left, right, "--timeout", "30", "--retries", "3"]
        ) == 0
        assert "links" in capsys.readouterr().err

"""Shared fixtures: small synthetic worlds reused across test modules.

Session-scoped because world generation is the slowest part of the suite;
all tests treat these datasets as read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import LocationDataset, Record, sample_linkage_pair
from repro.data.synth import default_cab_world, default_sm_world


@pytest.fixture(scope="session")
def cab_world() -> LocationDataset:
    """A small dense taxi world (~24 entities, 1 day)."""
    return default_cab_world(num_taxis=24, duration_days=1.0, seed=7).generate()


@pytest.fixture(scope="session")
def cab_pair(cab_world):
    """Default-parameter linkage pair over the cab world."""
    return sample_linkage_pair(
        cab_world, intersection_ratio=0.5, inclusion_probability=0.5, rng=7
    )


@pytest.fixture(scope="session")
def sm_world() -> LocationDataset:
    """A small sparse check-in world (~200 users)."""
    return default_sm_world(num_users=200, duration_days=8.0, seed=11).generate()


@pytest.fixture(scope="session")
def sm_pair(sm_world):
    """Default-parameter linkage pair over the check-in world."""
    return sample_linkage_pair(
        sm_world, intersection_ratio=0.5, inclusion_probability=0.5, rng=11
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture()
def tiny_dataset() -> LocationDataset:
    """Four entities with hand-written records around San Francisco."""
    base = 1_600_000_000.0
    records = []
    coordinates = {
        "a": (37.7749, -122.4194),
        "b": (37.7850, -122.4100),
        "c": (37.7600, -122.4300),
        "d": (37.8000, -122.4000),
    }
    for entity, (lat, lng) in coordinates.items():
        for k in range(12):
            records.append(
                Record(entity, lat + 0.001 * (k % 3), lng - 0.001 * (k % 2), base + 600 * k)
            )
    return LocationDataset.from_records(records, "tiny")

"""The ``slim-link serve`` front door: happy paths, serve-flag
validation (errors name the config field), and config-file round-trips
of the ``serve_*`` keys."""

import json

import pytest

from repro.cli import main
from repro.data import sample_linkage_pair, save_csv


@pytest.fixture(scope="module")
def csv_pair(tmp_path_factory, cab_world):
    tmp_path = tmp_path_factory.mktemp("cli_serve")
    pair = sample_linkage_pair(cab_world, 0.5, 0.5, rng=5)
    left_path = tmp_path / "left.csv"
    right_path = tmp_path / "right.csv"
    save_csv(pair.left, left_path)
    save_csv(pair.right, right_path)
    return left_path, right_path, pair


class TestServeHappyPath:
    def test_csv_replay_prints_links_and_counters(self, csv_pair, capsys):
        left_path, right_path, _ = csv_pair
        code = main(["serve", str(left_path), str(right_path), "--rounds", "3"])
        captured = capsys.readouterr()
        assert code == 0
        lines = captured.out.strip().splitlines()
        assert lines[0] == "left,right,score,linked"
        assert len(lines) > 1
        assert "serving counters (3 rounds)" in captured.err
        assert "snapshot_version" in captured.err
        assert "snapshot version 3" in captured.err

    def test_output_file(self, csv_pair, tmp_path, capsys):
        left_path, right_path, _ = csv_pair
        out = tmp_path / "links.csv"
        code = main(
            ["serve", str(left_path), str(right_path), "--output", str(out)]
        )
        capsys.readouterr()
        assert code == 0
        assert out.read_text().startswith("left,right,score,linked")

    def test_scenario_replay_reports_quality(self, capsys):
        code = main(
            [
                "serve",
                "--scenario",
                "bursty_arrival",
                "--scenario-scale",
                "0.3",
                "--rounds",
                "3",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "# scenario bursty_arrival" in captured.err
        assert "f1" in captured.err

    def test_serve_flags_reach_the_service(self, csv_pair, capsys):
        left_path, right_path, _ = csv_pair
        code = main(
            [
                "serve",
                str(left_path),
                str(right_path),
                "--rounds",
                "2",
                "--serve-batch",
                "64",
                "--serve-queue-depth",
                "32",
                "--serve-backpressure",
                "reject",
                "--queries-per-round",
                "5",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "serving counters (2 rounds)" in captured.err


class TestServeValidation:
    def test_missing_inputs(self, capsys):
        code = main(["serve"])
        captured = capsys.readouterr()
        assert code == 2
        assert "need two CSV paths" in captured.err

    def test_scenario_and_csv_conflict(self, csv_pair, capsys):
        left_path, right_path, _ = csv_pair
        code = main(
            [
                "serve",
                str(left_path),
                str(right_path),
                "--scenario",
                "bursty_arrival",
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "--scenario replaces" in captured.err

    def test_bad_rounds(self, csv_pair, capsys):
        left_path, right_path, _ = csv_pair
        code = main(["serve", str(left_path), str(right_path), "--rounds", "0"])
        captured = capsys.readouterr()
        assert code == 2
        assert "--rounds" in captured.err

    def test_bad_backpressure_names_the_field(self, csv_pair, capsys):
        left_path, right_path, _ = csv_pair
        code = main(
            [
                "serve",
                str(left_path),
                str(right_path),
                "--serve-backpressure",
                "bogus",
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "invalid configuration" in captured.err
        assert "serve_backpressure" in captured.err
        assert "'block', 'reject'" in captured.err.replace('"', "'")

    def test_bad_queue_depth_names_the_field(self, csv_pair, capsys):
        left_path, right_path, _ = csv_pair
        code = main(
            [
                "serve",
                str(left_path),
                str(right_path),
                "--serve-queue-depth",
                "0",
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "serve_queue_depth" in captured.err

    def test_bad_staleness_names_the_field(self, csv_pair, capsys):
        left_path, right_path, _ = csv_pair
        code = main(
            [
                "serve",
                str(left_path),
                str(right_path),
                "--serve-staleness",
                "-1",
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "serve_staleness" in captured.err


class TestServeConfigFile:
    def test_serve_keys_load_from_config_file(self, csv_pair, tmp_path, capsys):
        left_path, right_path, _ = csv_pair
        config_path = tmp_path / "config.json"
        config_path.write_text(
            json.dumps(
                {
                    "serve_batch": 64,
                    "serve_queue_depth": 16,
                    "serve_backpressure": "block",
                    "serve_staleness": 5.0,
                }
            )
        )
        code = main(
            [
                "serve",
                str(left_path),
                str(right_path),
                "--config",
                str(config_path),
                "--rounds",
                "2",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "serving counters" in captured.err

    def test_unknown_config_key_named(self, csv_pair, tmp_path, capsys):
        left_path, right_path, _ = csv_pair
        config_path = tmp_path / "config.json"
        config_path.write_text(json.dumps({"serve_batchs": 64}))
        code = main(
            [
                "serve",
                str(left_path),
                str(right_path),
                "--config",
                str(config_path),
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "serve_batchs" in captured.err

    def test_explicit_flag_overrides_config_file(self, tmp_path):
        """An explicit --serve-* flag beats the config file; an absent
        flag's parser default does not."""
        from repro.cli import _explicit_flags, build_parser, config_from_args

        config_path = tmp_path / "config.json"
        config_path.write_text(
            json.dumps({"serve_batch": 64, "serve_backpressure": "reject"})
        )
        argv = [
            "l.csv",
            "r.csv",
            "--config",
            str(config_path),
            "--serve-batch",
            "32",
        ]
        args = build_parser().parse_args(argv)
        config = config_from_args(args, _explicit_flags(argv))
        assert config.serve_batch == 32  # explicit flag wins
        assert config.serve_backpressure == "reject"  # file value survives
        assert config.serve_queue_depth == 1024  # untouched default

"""Privacy advisor: how identifiable is each user's location trail?

The paper motivates SLIM partly as a privacy tool: "an outcome of work such
as ours is to help developing privacy advisor tools where location based
activities are assessed in terms of their user identity linkage likelihood"
(Sec. 1).  This example inverts the linkage machinery to produce exactly
that assessment:

* For every user of an (anonymised) service A dataset, compute the margin
  between their best and second-best similarity against service B.
* A user whose true partner outscores every impostor by a wide margin is
  highly re-identifiable; a user inside the GMM's false-positive component
  is effectively hidden in the crowd.

Run:  python examples/privacy_advisor.py
"""

from repro.core.similarity import SimilarityConfig
from repro.data import sample_linkage_pair
from repro.data.synth import default_sm_world
from repro.eval import format_table, score_all_pairs


def main() -> None:
    world = default_sm_world(num_users=250, duration_days=10.0, seed=23).generate()
    pair = sample_linkage_pair(world, 0.5, 0.6, rng=23)
    print("datasets:", pair.describe(), "\n")

    scores, _ = score_all_pairs(pair, SimilarityConfig())

    # Rank each left-side user's candidates.
    by_left = {}
    for (left, right), value in scores.items():
        by_left.setdefault(left, []).append((value, right))

    assessments = []
    for left, ranked in by_left.items():
        ranked.sort(reverse=True)
        best_score, best_right = ranked[0]
        runner_up = ranked[1][0] if len(ranked) > 1 else 0.0
        margin = best_score - runner_up
        truly_linked = pair.ground_truth.get(left) == best_right
        assessments.append(
            {
                "user": left,
                "records": pair.left.record_count(left),
                "top_score": best_score,
                "margin": margin,
                "re_identified": truly_linked and margin > 0,
            }
        )

    assessments.sort(key=lambda row: -row["margin"])
    at_risk = [a for a in assessments if a["re_identified"]]

    print(
        format_table(
            assessments[:10],
            precision=2,
            title="Top-10 most re-identifiable users (largest linkage margin)",
        )
    )
    print(
        format_table(
            assessments[-5:],
            precision=2,
            title="\nLeast identifiable users",
        )
    )
    print(
        f"\n{len(at_risk)} of {len(assessments)} users "
        f"({100 * len(at_risk) / len(assessments):.0f}%) would be correctly "
        "re-identified by a SLIM-style adversary seeing only time and "
        "location.\nUsers with many records in *unpopular* venues carry the "
        "highest risk — the IDF term turns rare whereabouts into strong "
        "evidence."
    )


if __name__ == "__main__":
    main()

"""Automatic spatial-level tuning (Sec. 3.3).

Picking the grid level by hand requires labelled data or intuition; SLIM
instead measures, per candidate level, how much more similar an entity is
to itself than to others (pair/self similarity ratio) and takes the knee of
that curve.  This example shows the full diagnostic: the curve, the elbow,
and what the choice means for accuracy vs cost.

Run:  python examples/auto_tuning.py
"""

from repro import SlimConfig, SlimLinker
from repro.core.similarity import SimilarityConfig
from repro.core.tuning import auto_spatial_level, auto_spatial_level_for_pair
from repro.data import sample_linkage_pair
from repro.data.synth import default_cab_world
from repro.eval import format_table, precision_recall_f1


def main() -> None:
    world = default_cab_world(num_taxis=30, duration_days=1.0, seed=5).generate()
    pair = sample_linkage_pair(world, 0.5, 0.5, rng=5)

    levels = (4, 6, 8, 10, 12, 14, 16, 18, 20)
    choice = auto_spatial_level(
        world, levels=levels, sample_size=8, pairs_per_entity=6, rng=5
    )

    print("Pair/self similarity ratio per spatial level (lower = entities more distinguishable):\n")
    rows = [
        {"level": level, "ratio": ratio, "elbow": "<-- chosen" if level == choice.level else ""}
        for level, ratio in choice.curve().items()
    ]
    print(format_table(rows, precision=4))

    tuned_level = auto_spatial_level_for_pair(
        pair.left, pair.right, levels=levels, sample_size=6, pairs_per_entity=6, rng=5
    )
    print(f"\ntuned level for the linkage pair (max of both sides): {tuned_level}")

    # Show the trade-off the tuner navigates: accuracy vs comparison cost.
    print("\nLinkage quality and cost at selected levels:\n")
    sweep = []
    for level in (4, tuned_level, 20):
        result = SlimLinker(
            SlimConfig(similarity=SimilarityConfig(spatial_level=level))
        ).link(pair.left, pair.right)
        quality = precision_recall_f1(result.links, pair.ground_truth)
        sweep.append(
            {
                "level": level,
                "f1": quality.f1,
                "bin_comparisons": result.stats.bin_comparisons,
            }
        )
    print(format_table(sweep, precision=3))
    print(
        "\nThe tuned level reaches (near-)peak F1 at a fraction of the "
        "comparisons the\nfinest level spends — the trade-off Sec. 3.3 "
        "automates without labelled data."
    )


if __name__ == "__main__":
    main()

"""Linking two check-in services (the SM scenario).

The paper's second corpus links Twitter to Foursquare: sparse evidence
(~12 records/user), global spread, and *asynchronous* usage — the two
services are rarely used at the same instant, which is exactly what the
similarity score's asynchrony tolerance (Sec. 3.1, property 2) is for.

This example builds a two-service world, links with SLIM, and shows how
accuracy responds to the amount of evidence per user (the Fig. 7c effect:
F1 climbs steeply once users have >= ~15 records).

Run:  python examples/checkin_linkage.py
"""

from repro import SlimConfig, SlimLinker
from repro.data.synth import default_sm_world
from repro.eval import format_table, precision_recall_f1


def main() -> None:
    world = default_sm_world(num_users=400, duration_days=10.0, seed=11)

    print("Linking two asynchronous services derived from one check-in world\n")
    rows = []
    for inclusion in (0.3, 0.5, 0.7, 0.9):
        pair = world.two_services(
            intersection_ratio=0.5,
            inclusion_probability=inclusion,
            min_records=5,
            seed=11,
        )
        result = SlimLinker(SlimConfig()).link(pair.left, pair.right)
        quality = precision_recall_f1(result.links, pair.ground_truth)
        avg_records = (
            pair.left.num_records / pair.left.num_entities
            + pair.right.num_records / pair.right.num_entities
        ) / 2
        rows.append(
            {
                "inclusion_prob": inclusion,
                "avg_records": round(avg_records, 1),
                "entities/side": pair.left.num_entities,
                "true_links": pair.num_common,
                "produced": len(result.links),
                "precision": quality.precision,
                "recall": quality.recall,
                "f1": quality.f1,
            }
        )

    print(
        format_table(
            rows,
            precision=3,
            title="F1 vs record inclusion probability (SM-style world)",
        )
    )
    print(
        "\nAs in the paper (Fig. 7c): with ~10 records per user the linkage "
        "is partial;\nonce users carry >= ~15 records, F1 climbs above 0.9 "
        "while precision stays high\n(the automated stop threshold keeps "
        "false links out even when recall is limited)."
    )


if __name__ == "__main__":
    main()

"""Taxi-fleet linkage at scale: brute force vs LSH vs baselines.

The Cab scenario of the paper's evaluation: dense traces, one city, strong
spatial skew.  This example runs the same linkage four ways —

1. SLIM, brute-force candidate set;
2. SLIM with the LSH filtering layer (Sec. 4);
3. the ST-Link baseline (ref [3]);
4. the GM baseline (ref [43]) on a record-count-reduced slice (GM works at
   record granularity and has no blocking, so it is deliberately slow);

— and prints accuracy, comparison counts and the LSH speed-up, mirroring
the quantities of Figs. 8 and 11.

Run:  python examples/taxi_linkage.py
"""

import time

from repro import LshConfig, SlimConfig, SlimLinker
from repro.baselines import GmLinker, StLinkLinker
from repro.data import sample_linkage_pair
from repro.data.synth import default_cab_world
from repro.eval import format_table, precision_recall_f1, relative_f1, speedup


def main() -> None:
    world = default_cab_world(
        num_taxis=40, duration_days=1.5, sample_period_seconds=150, seed=7
    ).generate()
    pair = sample_linkage_pair(world, 0.5, 0.5, rng=7)
    print("datasets:", pair.describe(), "\n")

    rows = []

    # --- SLIM, brute force -------------------------------------------------
    start = time.perf_counter()
    brute = SlimLinker(SlimConfig()).link(pair.left, pair.right)
    brute_seconds = time.perf_counter() - start
    brute_quality = precision_recall_f1(brute.links, pair.ground_truth)
    rows.append(
        {
            "method": "SLIM (brute force)",
            "precision": brute_quality.precision,
            "recall": brute_quality.recall,
            "f1": brute_quality.f1,
            "comparisons": brute.stats.bin_comparisons,
            "runtime_s": brute_seconds,
        }
    )

    # --- SLIM + LSH ---------------------------------------------------------
    # At this demo scale (20x20 entity pairs) LSH yields a few-x speed-up at
    # full F1; the orders-of-magnitude factors of Figs. 8-9 need thousands
    # of entities (see benchmarks/bench_fig08/09).
    lsh_config = LshConfig(
        threshold=0.3, step_windows=24, spatial_level=14, num_buckets=4096
    )
    start = time.perf_counter()
    lsh = SlimLinker(SlimConfig(lsh=lsh_config)).link(pair.left, pair.right)
    lsh_seconds = time.perf_counter() - start
    lsh_quality = precision_recall_f1(lsh.links, pair.ground_truth)
    rows.append(
        {
            "method": "SLIM + LSH",
            "precision": lsh_quality.precision,
            "recall": lsh_quality.recall,
            "f1": lsh_quality.f1,
            "comparisons": lsh.stats.bin_comparisons,
            "runtime_s": lsh_seconds,
        }
    )

    # --- ST-Link ------------------------------------------------------------
    stlink = StLinkLinker().link(pair.left, pair.right)
    stlink_quality = precision_recall_f1(stlink.links, pair.ground_truth)
    rows.append(
        {
            "method": "ST-Link",
            "precision": stlink_quality.precision,
            "recall": stlink_quality.recall,
            "f1": stlink_quality.f1,
            "comparisons": stlink.record_comparisons,
            "runtime_s": stlink.runtime_seconds,
        }
    )

    # --- GM (reduced slice: it scores every record pair) --------------------
    gm_world = default_cab_world(
        num_taxis=16, duration_days=0.5, sample_period_seconds=450, seed=7
    ).generate()
    gm_pair = sample_linkage_pair(gm_world, 0.5, 0.5, rng=7)
    gm = GmLinker().link(gm_pair.left, gm_pair.right)
    gm_quality = precision_recall_f1(gm.links, gm_pair.ground_truth)
    rows.append(
        {
            "method": "GM (reduced slice)",
            "precision": gm_quality.precision,
            "recall": gm_quality.recall,
            "f1": gm_quality.f1,
            "comparisons": gm.record_comparisons,
            "runtime_s": gm.runtime_seconds,
        }
    )

    print(format_table(rows, precision=3, title="Taxi linkage comparison"))

    print(
        f"\nLSH candidate pairs: {lsh.candidate_pairs} of "
        f"{brute.candidate_pairs} "
        f"-> speed-up {speedup(brute.stats.bin_comparisons, lsh.stats.bin_comparisons):.1f}x, "
        f"relative F1 {relative_f1(lsh_quality.f1, brute_quality.f1):.3f}"
    )
    print(f"ST-Link auto-detected k={stlink.k}, l={stlink.l}")


if __name__ == "__main__":
    main()

"""Extending the linkage pipeline without touching ``repro``.

Three extension points, all through the public registries:

1. a custom *candidate stage* (a toy suffix-blocking generator);
2. a custom *stop-threshold method* (fixed quantile);
3. one serializable :class:`~repro.pipeline.config.LinkageConfig` naming
   both, round-tripped through JSON exactly as the CLI's ``--config``
   flag would load it.

Run::

    PYTHONPATH=src python examples/custom_pipeline.py
"""

from __future__ import annotations

import json

from repro import LinkageConfig, LinkagePipeline
from repro.core.threshold import ThresholdDecision
from repro.data import sample_linkage_pair
from repro.data.synth import default_cab_world
from repro.eval import precision_recall_f1
from repro.eval.reporting import stage_timings_table
from repro.pipeline import CandidateStage, candidate_stages, threshold_methods


# ----------------------------------------------------------------------
# 1. a custom candidate generator
# ----------------------------------------------------------------------
@candidate_stages.register("suffix-block")
class SuffixBlocking(CandidateStage):
    """Compare only ids sharing their final character — a stand-in for
    any domain-specific blocking key (home region, carrier, ...)."""

    def generate(self, context):
        rights = sorted(context.right_histories)
        return [
            (left, right)
            for left in sorted(context.left_histories)
            for right in rights
            if left[-1] == right[-1]
        ]


# ----------------------------------------------------------------------
# 2. a custom stop-threshold method
# ----------------------------------------------------------------------
@threshold_methods.register("p25")
def quantile_threshold(weights) -> ThresholdDecision:
    """Keep the top three quarters of matched edges."""
    ordered = sorted(weights)
    return ThresholdDecision(
        threshold=ordered[len(ordered) // 4],
        method="p25",
        expected_precision=float("nan"),
        expected_recall=float("nan"),
        expected_f1=float("nan"),
    )


def main() -> None:
    world = default_cab_world(num_taxis=24, duration_days=1.0, seed=7).generate()
    pair = sample_linkage_pair(
        world, intersection_ratio=0.5, inclusion_probability=0.5, rng=7
    )

    # 3. one config naming the custom stages, serialized like --config.
    config = LinkageConfig(candidates="suffix-block", threshold="p25")
    config = LinkageConfig.from_dict(json.loads(json.dumps(config.to_dict())))

    report = LinkagePipeline(config).run(pair.left, pair.right)
    quality = precision_recall_f1(report.links, pair.ground_truth)
    full = len(pair.left.entities) * len(pair.right.entities)
    print(
        f"suffix blocking kept {report.candidate_pairs}/{full} pairs; "
        f"{len(report.links)} links at threshold "
        f"{report.threshold.threshold:.4f} ({report.threshold.method}); "
        f"precision {quality.precision:.2f}"
    )

    # Compare against the paper's default pipeline: same report shape,
    # same canonical stage timings.
    default_report = LinkagePipeline(LinkageConfig()).run(pair.left, pair.right)
    print()
    print(
        stage_timings_table(
            {"suffix-block": report, "default": default_report},
            title="per-stage seconds",
        )
    )


if __name__ == "__main__":
    main()

"""Streaming linkage: relinking as mobility data arrives.

The paper motivates scalability with "the scale and dynamic nature of
location datasets" (Sec. 1).  This example replays a day of taxi data in
three-hour batches into a :class:`~repro.core.streaming.StreamingLinker`
and relinks after each batch, showing how linkage quality firms up as
evidence accumulates — and how the automated stop threshold keeps early,
under-evidenced links from polluting precision.

Run:  python examples/streaming_linkage.py
"""

from repro import LinkageConfig
from repro.core.streaming import StreamingLinker
from repro.data import sample_linkage_pair
from repro.data.synth import default_cab_world
from repro.eval import format_table, precision_recall_f1


def main() -> None:
    world = default_cab_world(num_taxis=30, duration_days=1.0, seed=9).generate()
    pair = sample_linkage_pair(world, 0.5, 0.5, rng=9)
    print("datasets:", pair.describe(), "\n")

    start = min(pair.left.time_range()[0], pair.right.time_range()[0])
    end = max(pair.left.time_range()[1], pair.right.time_range()[1])
    batch_seconds = 3 * 3600.0

    linker = StreamingLinker(origin=start, config=LinkageConfig())

    rows = []
    batch_end = start
    while batch_end < end:
        batch_start, batch_end = batch_end, batch_end + batch_seconds
        linker.observe(
            "left",
            (
                r
                for r in pair.left.records()
                if batch_start <= r.timestamp < batch_end
            ),
        )
        linker.observe(
            "right",
            (
                r
                for r in pair.right.records()
                if batch_start <= r.timestamp < batch_end
            ),
        )
        if linker.num_left_entities == 0 or linker.num_right_entities == 0:
            continue
        result = linker.relink()
        quality = precision_recall_f1(result.links, pair.ground_truth)
        relink = linker.last_relink
        rows.append(
            {
                "hours_seen": round((batch_end - start) / 3600.0, 1),
                "links": len(result.links),
                "precision": quality.precision,
                "recall": quality.recall,
                "f1": quality.f1,
                "threshold": result.threshold.threshold,
                "rescored": relink.pairs_rescored,
                "cached": relink.cache_hits,
            }
        )

    print(format_table(rows, precision=3, title="Linkage quality as data streams in"))
    print(
        "\nEarly batches carry little evidence: the GMM stop threshold keeps "
        "precision high\nby linking nothing it cannot separate; recall climbs "
        "as histories fill in."
    )

    # Relinks are *delta* relinks: with nothing new observed, the next one
    # re-scores no pairs at all — everything is served from the score cache.
    final = linker.relink()
    relink = linker.last_relink
    print(
        f"\nzero-delta relink: {relink.pairs_rescored} pairs re-scored, "
        f"{relink.cache_hits}/{relink.candidate_pairs} served from cache "
        f"({len(final.links)} links, unchanged)"
    )

    retention_demo(pair, start)


def retention_demo(pair, start: float) -> None:
    """Bounded-memory streaming: a sliding-window retention policy keeps
    the working set at the live entities — retired ids drop out of the
    corpus, the LSH index and the score cache, and the relink stays
    bit-identical to a cold run over the survivors."""
    from repro.eval import retention_table

    config = LinkageConfig(
        retention="sliding_window",
        retention_window=24,  # six hours of 15-minute windows
        threshold="none",
    )
    linker = StreamingLinker(origin=start, config=config)
    rows = []
    batch_seconds = 3 * 3600.0
    end = max(pair.left.time_range()[1], pair.right.time_range()[1])
    # Half the fleet goes offline after nine hours — the churn a real
    # feed sees, and what gives the retention policy something to do.
    offline_after = start + 9 * 3600.0
    offline = {
        side: set(sorted(getattr(pair, side).entities)[::2])
        for side in ("left", "right")
    }
    batch_end = start
    relinks = 0
    while batch_end < end:
        batch_start, batch_end = batch_end, batch_end + batch_seconds
        for side, dataset in (("left", pair.left), ("right", pair.right)):
            linker.observe(
                side,
                (
                    r
                    for r in dataset.records()
                    if batch_start <= r.timestamp < batch_end
                    and not (
                        r.entity_id in offline[side]
                        and r.timestamp > offline_after
                    )
                ),
            )
        if linker.num_left_entities == 0 or linker.num_right_entities == 0:
            continue
        linker.relink()
        stats = linker.memory_stats()
        row = {
            "relink": relinks,
            "left_entities": stats["left_entities"],
            "right_entities": stats["right_entities"],
            "evicted_left": linker.last_relink.evicted_left,
            "evicted_right": linker.last_relink.evicted_right,
            "left_flat_entries": stats["left_flat_entries"],
            "left_flat_live": stats["left_flat_live"],
            "score_cache_rows": stats["score_cache_rows"],
        }
        rows.append(row)
        relinks += 1
    print()
    print(
        retention_table(
            rows, title="Bounded-memory stream (6-hour sliding window)"
        )
    )
    print(
        "\nAfter every eviction the flat arrays equal the live footprint "
        "(eager compaction);\nwithout retention they would grow with every "
        "entity ever observed."
    )


if __name__ == "__main__":
    main()

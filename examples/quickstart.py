"""Quickstart: link two mobility datasets in ~20 lines.

Generates a small synthetic taxi world, samples two overlapping, anonymised
observation datasets from it (the paper's experimental protocol), runs the
full SLIM pipeline, and checks the produced links against the held-out
ground truth.

Run:  python examples/quickstart.py
"""

from repro import LinkageConfig, LinkagePipeline
from repro.data import sample_linkage_pair
from repro.data.synth import default_cab_world
from repro.eval import precision_recall_f1


def main() -> None:
    # A synthetic city with 30 taxis over one day (stand-in for the SF cab trace).
    world = default_cab_world(num_taxis=30, duration_days=1.0, seed=42).generate()

    # Two services observed the same fleet: 50% of entities overlap, each
    # record survives with probability 0.5, ids are re-anonymised per side.
    pair = sample_linkage_pair(
        world, intersection_ratio=0.5, inclusion_probability=0.5, rng=42
    )
    print("datasets:", pair.describe())

    # Link with the paper's default configuration (15-minute windows,
    # spatial level 12, greedy matching, GMM stop threshold).
    result = LinkagePipeline(LinkageConfig()).run(pair.left, pair.right)

    print(f"\nmatched pairs : {len(result.matched_edges)}")
    print(
        f"stop threshold: {result.threshold.threshold:.2f} "
        f"(method={result.threshold.method}, "
        f"expected precision={result.threshold.expected_precision:.2f})"
    )
    print(f"links produced: {len(result.links)}")

    quality = precision_recall_f1(result.links, pair.ground_truth)
    print(
        f"\nagainst ground truth: precision={quality.precision:.3f} "
        f"recall={quality.recall:.3f} F1={quality.f1:.3f}"
    )
    for left, right in list(result.links.items())[:5]:
        truth = pair.ground_truth.get(left)
        verdict = "correct" if truth == right else f"WRONG (truth: {truth})"
        print(f"  {left} -> {right}  [{verdict}]")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Ratchet mypy errors downward against a committed baseline.

The policy (mirrors ``check_bench_regression.py`` for types):

* ``src/repro/analysis/`` is typed **strict** — any error there fails,
  always, baseline or not.
* The rest of ``src/repro`` is typed *basic*: existing errors live in
  ``tools/mypy_baseline.txt`` and are tolerated, new ones fail, and when
  errors are fixed the run says so and ``--update`` shrinks the file —
  the count can only go down.

Baseline lines are normalised (the source line number is stripped) so
unrelated edits shifting code downward do not churn the file.  A
baseline containing the ``# bootstrap`` marker accepts the current
non-strict errors and prints the frozen content to commit — that is how
the first real baseline gets minted on a machine with mypy installed.

When mypy is not importable the check is skipped with exit 0 (the CI
lint job installs it; local environments without it stay green).
"""

from __future__ import annotations

import argparse
import importlib.util
import os
import re
import subprocess
import sys
from collections import Counter
from pathlib import Path
from typing import Iterable, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "tools" / "mypy_baseline.txt"
BOOTSTRAP_MARKER = "# bootstrap"
STRICT_PREFIX = "src/repro/analysis/"

#: ``path:line: error: message  [code]`` (column optional).
_ERROR_RE = re.compile(
    r"^(?P<path>[^:]+\.pyi?):(?P<line>\d+)(?::\d+)?:\s*error:\s*(?P<rest>.*)$"
)


def normalize_errors(output: str) -> List[str]:
    """Stable error keys from raw mypy stdout: ``path: message``.

    Line numbers are deliberately dropped — they drift with unrelated
    edits; path plus message is stable enough to ratchet on.
    """
    normalized = []
    for line in output.splitlines():
        match = _ERROR_RE.match(line.strip())
        if match is not None:
            path = match.group("path").replace("\\", "/")
            normalized.append(f"{path}: {match.group('rest').strip()}")
    return normalized


def read_baseline(text: str) -> Tuple[List[str], bool]:
    """Baseline entries and whether the bootstrap marker is present."""
    entries: List[str] = []
    bootstrap = False
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("#"):
            if stripped.startswith(BOOTSTRAP_MARKER):
                bootstrap = True
            continue
        entries.append(stripped)
    return entries, bootstrap


def compare_to_baseline(
    current: Iterable[str], baseline: Iterable[str]
) -> Tuple[List[str], int]:
    """``(new_errors, fixed_count)`` by multiset comparison."""
    current_counts = Counter(current)
    baseline_counts = Counter(baseline)
    new_errors = sorted((current_counts - baseline_counts).elements())
    fixed = sum((baseline_counts - current_counts).values())
    return new_errors, fixed


def strict_violations(current: Iterable[str]) -> List[str]:
    """Errors inside the strict package — never baseline-able."""
    return sorted(error for error in current if error.startswith(STRICT_PREFIX))


def render_baseline(errors: Iterable[str]) -> str:
    lines = [
        "# mypy baseline — tolerated pre-existing errors (one per line,",
        "# line numbers stripped).  Regenerate with:",
        "#   python tools/check_type_baseline.py --update",
        "# The count may only go down; new errors fail CI.",
    ]
    lines.extend(sorted(set(errors)))
    return "\n".join(lines) + "\n"


def run_mypy(targets: List[str]) -> Optional[str]:
    """Raw mypy stdout, or ``None`` when mypy is not installed."""
    if importlib.util.find_spec("mypy") is None:
        return None
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "mypy",
            "--config-file",
            str(REPO_ROOT / "pyproject.toml"),
            *targets,
        ],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    return result.stdout


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update",
        action="store_true",
        help="freeze the current non-strict errors as the new baseline",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        default=["src/repro"],
        help="paths passed to mypy (default: src/repro)",
    )
    options = parser.parse_args(argv)

    output = run_mypy(options.targets or ["src/repro"])
    if output is None:
        print(
            "check_type_baseline: mypy is not installed in this "
            "environment; skipping (the CI lint job installs it)"
        )
        return 0

    current = normalize_errors(output)
    strict = strict_violations(current)
    if strict:
        print(f"{len(strict)} error(s) in strict package {STRICT_PREFIX}:")
        for error in strict:
            print(f"  {error}")
        return 1
    tolerated = [e for e in current if not e.startswith(STRICT_PREFIX)]

    if options.update:
        BASELINE_PATH.write_text(render_baseline(tolerated))
        print(
            f"baseline updated: {len(set(tolerated))} tolerated error(s) "
            f"written to {os.path.relpath(BASELINE_PATH, REPO_ROOT)}"
        )
        return 0

    baseline, bootstrap = read_baseline(
        BASELINE_PATH.read_text() if BASELINE_PATH.exists() else ""
    )
    if bootstrap:
        print(
            "baseline is in bootstrap mode: accepting "
            f"{len(tolerated)} current error(s).  Freeze it with:\n"
            "  python tools/check_type_baseline.py --update"
        )
        return 0

    new_errors, fixed = compare_to_baseline(tolerated, baseline)
    if new_errors:
        print(f"{len(new_errors)} new mypy error(s) not in the baseline:")
        for error in new_errors:
            print(f"  {error}")
        print("fix them (preferred) or regenerate with --update")
        return 1
    if fixed:
        print(
            f"nice: {fixed} baseline error(s) no longer occur; shrink the "
            "baseline with: python tools/check_type_baseline.py --update"
        )
    print(
        f"mypy ratchet OK: {len(tolerated)} tolerated error(s) "
        f"(baseline {len(baseline)})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

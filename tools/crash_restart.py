#!/usr/bin/env python
"""Crash-restart drill: SIGKILL a checkpointing linker, restore, compare.

The durability claim behind ``StreamingLinker.save``/``restore`` is that
a process killed at *any* instant — mid-payload-write, mid-promote —
resumes from its last complete snapshot and converges to links
bit-identical to a run that never crashed.  This drill proves it the
blunt way:

1. an **uninterrupted reference** replays ``ROUNDS`` deterministic
   synthetic rounds in-process and records the final links;
2. a sequence of **child attempts** (``--child``) replays the same
   stream, restoring from the snapshot directory and checkpointing after
   every round — each armed via ``REPRO_KILL_SWITCH`` to SIGKILL itself
   at a different point inside the snapshot writer (after the N-th
   payload write, or right after the promote);
3. a final unarmed child runs to completion, and the driver asserts its
   links JSON is **byte-identical** to the reference.

The scoring executor comes from ``REPRO_EXECUTOR`` (the CI matrix runs
``serial`` and ``process``), exercising restore under every backend.

Usage::

    REPRO_EXECUTOR=serial python tools/crash_restart.py --workdir /tmp/drill
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.streaming import StreamingLinker  # noqa: E402
from repro.data import Record  # noqa: E402
from repro.pipeline import LinkageConfig  # noqa: E402

ROUNDS = 6
PER_SIDE = 10
ROUND_SECONDS = 3600.0
#: Kill points the driver arms, in order: mid first snapshot (before any
#: checkpoint exists), mid later snapshots, and right after a promote
#: (between the ``os.replace`` and the ``CURRENT`` pointer swap).
KILL_PLAN = [
    "snapshot-file:1",
    "snapshot-file:2",
    "snapshot-file:5",
    "snapshot-promote:2",
]


def drill_config() -> LinkageConfig:
    """Every matched pair is a link (``threshold="none"``), so the
    bit-identity comparison covers the full matching, not the few pairs
    a data-driven stop threshold keeps on this small synthetic world."""
    return LinkageConfig(threshold="none")


def round_records(side: str, round_index: int):
    """Round ``round_index`` of the deterministic synthetic stream."""
    jitter = 0.0 if side == "left" else 1.1e-4
    return [
        Record(
            f"e{i}",
            37.6 + (i % 5) * 0.01 + jitter,
            -122.4 + (i // 5) * 0.01 + jitter,
            round_index * ROUND_SECONDS + (i * 7) % 3500 + 10.0,
        )
        for i in range(PER_SIDE)
    ]


def links_payload(report) -> str:
    """Canonical JSON of one relink's links (full-precision scores)."""
    rows = [
        [left, right, repr(score)]
        for (left, right), score in sorted(report.link_scores.items())
    ]
    return json.dumps({"links": sorted(dict(report.links).items()), "scores": rows})


def replay(linker: StreamingLinker, rounds, snapshot_dir=None):
    report = None
    for round_index in rounds:
        linker.observe("left", round_records("left", round_index))
        linker.observe("right", round_records("right", round_index))
        report = linker.relink()
        if snapshot_dir is not None:
            linker.save(snapshot_dir)
    return report


def resume_round(linker: StreamingLinker) -> int:
    """First unseen round, derived from the restored event-time watermark."""
    return int(linker.watermark // ROUND_SECONDS) + 1


def child_main(snapshot_dir: Path, links_path: Path) -> int:
    """One checkpointing replay attempt (possibly armed to SIGKILL itself)."""
    linker = StreamingLinker.restore(snapshot_dir)
    if linker is None:
        start = 0
        linker = StreamingLinker(0.0, config=drill_config())
    else:
        start = resume_round(linker)
    report = replay(linker, range(start, ROUNDS), snapshot_dir)
    if report is None:  # restored a snapshot that already saw every round
        report = linker.relink()
    links_path.write_text(links_payload(report))
    return 0


def driver_main(workdir: Path) -> int:
    workdir.mkdir(parents=True, exist_ok=True)
    links_path = workdir / "links.json"
    executor = os.environ.get("REPRO_EXECUTOR", "serial")
    print(f"crash-restart drill: executor={executor} workdir={workdir}")

    reference = links_payload(
        replay(StreamingLinker(0.0, config=drill_config()), range(ROUNDS))
    )

    child_cmd = [
        sys.executable,
        os.path.abspath(__file__),
        "--child",
        "--workdir",
        str(workdir),
    ]
    env = dict(os.environ)
    for attempt, kill_spec in enumerate(KILL_PLAN, start=1):
        env["REPRO_KILL_SWITCH"] = kill_spec
        result = subprocess.run(child_cmd, env=env)
        if result.returncode != -signal.SIGKILL:
            print(
                f"FAIL: attempt {attempt} armed with {kill_spec} exited "
                f"{result.returncode}, expected SIGKILL "
                f"({-signal.SIGKILL})",
                file=sys.stderr,
            )
            return 1
        print(f"  attempt {attempt}: killed mid-snapshot at {kill_spec} (as armed)")

    env.pop("REPRO_KILL_SWITCH", None)
    result = subprocess.run(child_cmd, env=env)
    if result.returncode != 0:
        print(
            f"FAIL: unarmed final attempt exited {result.returncode}",
            file=sys.stderr,
        )
        return 1
    final = links_path.read_text()
    if final != reference:
        print(
            "FAIL: restored replay diverged from the uninterrupted "
            f"reference\n  reference: {reference}\n  restored:  {final}",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: {len(KILL_PLAN)} mid-snapshot SIGKILLs, restored replay "
        "bit-identical to the uninterrupted reference "
        f"({len(json.loads(final)['links'])} links)"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workdir",
        required=True,
        help="scratch directory for snapshots and links JSON",
    )
    parser.add_argument(
        "--child",
        action="store_true",
        help="internal: run one checkpointing replay attempt",
    )
    args = parser.parse_args()
    workdir = Path(args.workdir)
    if args.child:
        return child_main(workdir / "snaps", workdir / "links.json")
    return driver_main(workdir)


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Snapshot-and-diff the public API surface of ``repro``.

Walks every module under the ``repro`` package, collects the names each
module declares in ``__all__``, and compares the result against the
checked-in snapshot ``docs/api_surface.txt``.  CI runs the check mode, so
a PR that adds, removes or renames public API without updating the
snapshot fails — public-surface drift becomes a *declared* decision with
a reviewable one-line diff, not an accident.

Usage::

    PYTHONPATH=src python tools/check_api_surface.py            # check (CI)
    PYTHONPATH=src python tools/check_api_surface.py --update   # regenerate

Modules without ``__all__`` are treated as having no public surface
(internal helpers); defining ``__all__`` is what publishes a module here.
"""

from __future__ import annotations

import argparse
import difflib
import importlib
import pkgutil
import sys
from pathlib import Path
from typing import List

SNAPSHOT = Path(__file__).resolve().parent.parent / "docs" / "api_surface.txt"

HEADER = [
    "# Public API surface of the repro package.",
    "# One line per (module, __all__ entry).  Regenerate with:",
    "#     PYTHONPATH=src python tools/check_api_surface.py --update",
]


def collect_surface() -> List[str]:
    """``module.name`` lines for every ``__all__`` entry under repro."""
    import repro

    lines: List[str] = []
    modules = ["repro"] + [
        info.name
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    ]
    for module_name in sorted(modules):
        module = importlib.import_module(module_name)
        declared = getattr(module, "__all__", None)
        if not declared:
            continue
        for name in sorted(declared):
            lines.append(f"{module_name}.{name}")
    return lines


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the snapshot instead of checking against it",
    )
    args = parser.parse_args(argv)

    current = HEADER + collect_surface()
    if args.update:
        SNAPSHOT.parent.mkdir(parents=True, exist_ok=True)
        SNAPSHOT.write_text("\n".join(current) + "\n")  # repro-lint: disable=snapshot-io -- a text listing of the API, not a crash-consistent linker snapshot
        print(f"wrote {SNAPSHOT} ({len(current) - len(HEADER)} entries)")
        return 0

    if not SNAPSHOT.exists():
        print(
            f"missing snapshot {SNAPSHOT}; run with --update to create it",
            file=sys.stderr,
        )
        return 1
    recorded = SNAPSHOT.read_text().splitlines()
    if recorded == current:
        print(
            f"api surface matches {SNAPSHOT.name} "
            f"({len(current) - len(HEADER)} entries)"
        )
        return 0
    print(
        "public API surface drifted from docs/api_surface.txt "
        "(run tools/check_api_surface.py --update and commit the diff):",
        file=sys.stderr,
    )
    for line in difflib.unified_diff(
        recorded, current, fromfile="docs/api_surface.txt", tofile="current",
        lineterm="",
    ):
        print(line, file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

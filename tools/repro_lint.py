#!/usr/bin/env python
"""Run the repro-lint rule pack over a set of files or directories.

Usage::

    python tools/repro_lint.py src tools benchmarks
    python tools/repro_lint.py --format json src
    python tools/repro_lint.py --list-rules
    python tools/repro_lint.py --select unseeded-rng,wall-clock src

Exit status: 0 when clean, 1 when any non-suppressed finding survives,
2 on usage errors (unknown rule ids, missing paths).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = _REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis import lint_rules, run_lint  # noqa: E402


def _split_rule_list(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [name.strip() for name in raw.split(",") if name.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (e.g. src tools benchmarks)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule id and its invariant, then exit",
    )
    options = parser.parse_args(argv)

    if options.list_rules:
        for name in lint_rules.names():
            print(f"{name}: {lint_rules.get(name).invariant}")
        return 0

    if not options.paths:
        parser.error("no paths given (and --list-rules not requested)")
    missing = [path for path in options.paths if not path.exists()]
    if missing:
        parser.error(f"no such path: {', '.join(map(str, missing))}")

    try:
        report = run_lint(
            options.paths,
            select=_split_rule_list(options.select),
            ignore=_split_rule_list(options.ignore),
        )
    except KeyError as error:
        print(f"repro-lint: {error.args[0]}", file=sys.stderr)
        return 2

    if options.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render_text())
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())

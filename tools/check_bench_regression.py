#!/usr/bin/env python
"""Gate CI on the machine-readable benchmark trajectory.

Every perf-sensitive bench emits a ``BENCH_<name>.json`` into
``benchmarks/results/`` (speedups, parity flags, environment stamps).
This checker compares a *fresh* emission directory against the
*committed baselines* and fails when

* a ``speedup`` value (top-level or nested) fell below
  ``tolerance x baseline`` — shared runners are noisy, so the default
  tolerance is a permissive ratio, not an equality;
* an ``overhead_ratio`` value (lower is better — e.g. fault-recovery
  overhead) rose above ``baseline / tolerance``, the mirror-image bound;
* a boolean parity flag that was true in the baseline went false, or a
  numeric parity delta (e.g. ``max_score_delta``) exceeded the repo-wide
  1e-9 bound — parity regressions are never noise;
* a value fell below a sibling ``<key>_floor`` bound, or rose above a
  sibling ``<key>_ceiling`` bound, that the emission itself carries
  (the scenario-matrix ``f1``/``f1_floor`` quality gate, the serving
  bench's ``ingest_rate``/``ingest_rate_floor`` and
  ``query_p99_s``/``query_p99_s_ceiling``): self-contained bounds travel
  with the emission, so smoke-scale runs bring smoke-scale bounds and
  they bind on any runner;
* an ``f1`` value fell below ``baseline f1 - f1 tolerance`` on an
  identical workload — quality is hardware-independent, so unlike
  speedups this comparison also runs on single-CPU runners.

Files whose fresh emission records ``"cpus": 1`` are skipped for the
speedup comparison (a single-CPU runner cannot reproduce parallel
speedups; parity and quality are still checked).  Series present only in
one directory are reported but do not fail the gate: a brand-new bench
has no baseline yet, and not every CI job runs every bench.

Usage::

    cp -r benchmarks/results /tmp/bench-baseline   # before the benches
    ...run benches (they overwrite benchmarks/results)...
    python tools/check_bench_regression.py \\
        --baseline /tmp/bench-baseline --fresh benchmarks/results

    python tools/check_bench_regression.py --self-test   # verifies the gate
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path
from typing import Dict, Iterator, List, Tuple

#: Fresh speedups must reach this fraction of the committed baseline.
DEFAULT_TOLERANCE = 0.5

#: Repo-wide bound on numeric parity deltas (score drift et al.).
PARITY_EPSILON = 1e-9

#: Absolute F1 dip allowed against an identical-workload baseline
#: (GMM thresholding has a little seed-free run-to-run wiggle; a real
#: quality regression dwarfs this).
F1_TOLERANCE = 0.05


def walk(document: object, path: str = "") -> Iterator[Tuple[str, object]]:
    """Depth-first (dotted-path, value) pairs over a JSON document."""
    if isinstance(document, dict):
        for key, value in sorted(document.items()):
            yield from walk(value, f"{path}.{key}" if path else str(key))
    elif isinstance(document, list):
        for position, value in enumerate(document):
            yield from walk(value, f"{path}[{position}]")
    else:
        yield path, document


def _leaves_named(document: object, key: str) -> Dict[str, float]:
    """Every numeric value under a key named ``key``."""
    return {
        path: float(value)
        for path, value in walk(document)
        if path.rsplit(".", 1)[-1].split("[")[0] == key
        and isinstance(value, (int, float))
        and not isinstance(value, bool)
    }


def speedups(document: object) -> Dict[str, float]:
    """Every numeric value under a key named ``speedup``."""
    return _leaves_named(document, "speedup")


def overheads(document: object) -> Dict[str, float]:
    """Every numeric value under a key named ``overhead_ratio``."""
    return _leaves_named(document, "overhead_ratio")


def parity_flags(document: object) -> Dict[str, object]:
    """Every leaf under any ``parity`` object."""
    return {
        path: value
        for path, value in walk(document)
        if ".parity." in f".{path}"
    }


def f1_values(document: object) -> Dict[str, float]:
    """Every numeric value under a key named ``f1``."""
    return _leaves_named(document, "f1")


def numeric_leaves(document: object) -> Dict[str, float]:
    """Every numeric leaf in the document, by dotted path."""
    return {
        path: float(value)
        for path, value in walk(document)
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }


def sibling_bounds(document: object, suffix: str) -> Dict[str, float]:
    """Every numeric ``<key><suffix>`` leaf, rekeyed to the sibling
    ``<key>`` path it bounds (``suffix`` is ``"_floor"`` or
    ``"_ceiling"``)."""
    return {
        path[: -len(suffix)]: float(value)
        for path, value in walk(document)
        if path.rsplit(".", 1)[-1].endswith(suffix)
        and len(path.rsplit(".", 1)[-1]) > len(suffix)
        and isinstance(value, (int, float))
        and not isinstance(value, bool)
    }


def compare_file(
    name: str,
    baseline: Dict,
    fresh: Dict,
    tolerance: float,
    f1_tolerance: float = F1_TOLERANCE,
) -> List[str]:
    """Regression messages for one BENCH series (empty = clean)."""
    problems: List[str] = []

    # The ``workload`` stamp decides comparability; an emission without
    # one used to slip through as "matching" any other unstamped file
    # (or blow up with a bare KeyError in earlier drafts).  Name the
    # file and the missing key instead, and never treat the pair as
    # comparable.
    stamps: Dict[str, object] = {}
    for label, document in (("baseline", baseline), ("fresh", fresh)):
        try:
            stamps[label] = document["workload"]
        except KeyError:
            problems.append(
                f"{name}: {label} emission lacks the 'workload' stamp "
                "(required to decide whether runs are comparable); "
                "re-emit the series with its workload recorded"
            )
    same_workload = len(stamps) == 2 and stamps["baseline"] == stamps["fresh"]

    # Sibling bounds are self-contained: the emission carries both the
    # measured value and the ``<key>_floor`` / ``<key>_ceiling`` it must
    # respect, so they bind at any workload scale and on any runner.
    fresh_leaves = numeric_leaves(fresh)
    for path, floor in sorted(sibling_bounds(fresh, "_floor").items()):
        value = fresh_leaves.get(path)
        if value is None:
            problems.append(f"{name}: {path}_floor present but {path} missing")
        elif value < floor:
            problems.append(
                f"{name}: {path}={value:.3f} fell below its floor {floor:.3f}"
            )
    for path, ceiling in sorted(sibling_bounds(fresh, "_ceiling").items()):
        value = fresh_leaves.get(path)
        if value is None:
            problems.append(
                f"{name}: {path}_ceiling present but {path} missing"
            )
        elif value > ceiling:
            problems.append(
                f"{name}: {path}={value:.3f} exceeded its ceiling "
                f"{ceiling:.3f}"
            )

    fresh_f1 = f1_values(fresh)

    # Baseline F1 comparison needs an identical workload but, unlike the
    # speedup floor, not a multi-CPU runner.
    if same_workload:
        base_f1 = f1_values(baseline)
        for path, value in sorted(fresh_f1.items()):
            base_value = base_f1.get(path)
            if base_value is None:
                continue
            if value < base_value - f1_tolerance:
                problems.append(
                    f"{name}: {path} regressed to {value:.3f} "
                    f"(baseline {base_value:.3f}, tolerance {f1_tolerance})"
                )

    for path, value in parity_flags(fresh).items():
        base_value = parity_flags(baseline).get(path)
        if isinstance(value, bool):
            if base_value is True and value is False:
                problems.append(f"{name}: parity flag {path} went false")
        elif isinstance(value, (int, float)):
            if abs(value) > PARITY_EPSILON:
                problems.append(
                    f"{name}: parity delta {path}={value!r} exceeds "
                    f"{PARITY_EPSILON}"
                )

    if fresh.get("cpus") == 1:
        print(f"  {name}: cpus=1 in fresh emission — speedups skipped")
        return problems
    if not same_workload:
        # Speedups are only comparable on identical workloads: a smoke
        # run against a full-scale baseline (or a reshaped workload)
        # says nothing about regressions.  Parity was still checked.
        print(f"  {name}: workload differs from baseline — speedups skipped")
        return problems

    base_speedups = speedups(baseline)
    for path, value in speedups(fresh).items():
        base_value = base_speedups.get(path)
        if base_value is None or base_value <= 0:
            continue
        floor = base_value * tolerance
        if value < floor:
            problems.append(
                f"{name}: {path} regressed to {value:.3f}x "
                f"(baseline {base_value:.3f}x, floor {floor:.3f}x)"
            )

    base_overheads = overheads(baseline)
    for path, value in overheads(fresh).items():
        base_value = base_overheads.get(path)
        if base_value is None or base_value <= 0:
            continue
        ceiling = base_value / tolerance
        if value > ceiling:
            problems.append(
                f"{name}: {path} grew to {value:.3f}x "
                f"(baseline {base_value:.3f}x, ceiling {ceiling:.3f}x)"
            )
    return problems


def compare_dirs(
    baseline_dir: Path,
    fresh_dir: Path,
    tolerance: float,
    f1_tolerance: float = F1_TOLERANCE,
) -> List[str]:
    problems: List[str] = []
    baseline_files = {p.name: p for p in sorted(baseline_dir.glob("BENCH_*.json"))}
    fresh_files = {p.name: p for p in sorted(fresh_dir.glob("BENCH_*.json"))}
    if not baseline_files and not fresh_files:
        problems.append(
            f"no BENCH_*.json found in {baseline_dir} or {fresh_dir}"
        )
    for name in sorted(set(baseline_files) | set(fresh_files)):
        if name not in fresh_files:
            print(f"  {name}: not emitted by this run — skipped")
            continue
        if name not in baseline_files:
            print(f"  {name}: new series (no baseline yet) — skipped")
            continue
        baseline = json.loads(baseline_files[name].read_text())
        fresh = json.loads(fresh_files[name].read_text())
        found = compare_file(name, baseline, fresh, tolerance, f1_tolerance)
        problems.extend(found)
        if not found:
            print(f"  {name}: ok")
    return problems


# ---------------------------------------------------------------------------
# self-test: the gate must actually catch an injected regression
# ---------------------------------------------------------------------------
def self_test() -> int:
    baseline = {
        "bench": "demo",
        "workload": {"rounds": 2, "per_side": 8},
        "speedup": 4.0,
        "nested": {"speedup": 3.0},
        "overhead_ratio": 1.2,
        "parity": {"links_identical": True, "max_score_delta": 0.0},
        "scenarios": [{"scenario": "demo", "f1": 0.9, "f1_floor": 0.5}],
        "serving": {
            "ingest_rate": 500.0,
            "ingest_rate_floor": 100.0,
            "query_p99_s": 0.001,
            "query_p99_s_ceiling": 0.05,
        },
    }

    def outcome(
        fresh: Dict,
        tolerance: float = DEFAULT_TOLERANCE,
        base: Dict = None,
    ) -> List[str]:
        with tempfile.TemporaryDirectory() as tmp:
            base_dir = Path(tmp) / "base"
            fresh_dir = Path(tmp) / "fresh"
            base_dir.mkdir()
            fresh_dir.mkdir()
            (base_dir / "BENCH_demo.json").write_text(
                json.dumps(baseline if base is None else base)
            )
            (fresh_dir / "BENCH_demo.json").write_text(json.dumps(fresh))
            return compare_dirs(base_dir, fresh_dir, tolerance)

    unstamped = {k: v for k, v in baseline.items() if k != "workload"}

    checks = {
        "identical emission passes": outcome(dict(baseline)) == [],
        "within-tolerance dip passes": outcome(
            {**baseline, "speedup": 2.5}
        ) == [],
        "injected speedup regression fails": outcome(
            {**baseline, "speedup": 0.5}
        ) != [],
        "nested speedup regression fails": outcome(
            {**baseline, "nested": {"speedup": 0.2}}
        ) != [],
        "parity flag flip fails": outcome(
            {**baseline, "parity": {"links_identical": False,
                                    "max_score_delta": 0.0}}
        ) != [],
        "parity delta blow-up fails": outcome(
            {**baseline, "parity": {"links_identical": True,
                                    "max_score_delta": 0.5}}
        ) != [],
        "cpus=1 skips the speedup floor": outcome(
            {**baseline, "cpus": 1, "speedup": 0.1}
        ) == [],
        "changed workload skips the speedup floor": outcome(
            {**baseline, "workload": {"rounds": 1}, "speedup": 0.1}
        ) == [],
        "changed workload still checks parity": outcome(
            {**baseline, "workload": {"rounds": 1},
             "parity": {"links_identical": False, "max_score_delta": 0.0}}
        ) != [],
        "cpus=1 still checks parity": outcome(
            {**baseline, "cpus": 1,
             "parity": {"links_identical": False, "max_score_delta": 0.0}}
        ) != [],
        "unstamped baseline fails naming the file and key": any(
            "BENCH_demo.json: baseline emission lacks the 'workload' stamp"
            in problem
            for problem in outcome(dict(baseline), base=unstamped)
        ),
        "unstamped fresh emission fails naming the file and key": any(
            "BENCH_demo.json: fresh emission lacks the 'workload' stamp"
            in problem
            for problem in outcome(dict(unstamped))
        ),
        "two unstamped emissions do not silently match": outcome(
            {**unstamped, "speedup": 0.1}, base=unstamped
        ) != [],
        "tighter tolerance binds": outcome(
            {**baseline, "speedup": 3.0}, tolerance=0.9
        ) != [],
        "within-ceiling overhead rise passes": outcome(
            {**baseline, "overhead_ratio": 2.0}
        ) == [],
        "injected overhead regression fails": outcome(
            {**baseline, "overhead_ratio": 5.0}
        ) != [],
        "cpus=1 skips the overhead ceiling": outcome(
            {**baseline, "cpus": 1, "overhead_ratio": 9.0}
        ) == [],
        "f1 above its floor passes": outcome(
            {**baseline,
             "scenarios": [{"scenario": "demo", "f1": 0.88, "f1_floor": 0.5}]}
        ) == [],
        "f1 below its floor fails": outcome(
            {**baseline,
             "scenarios": [{"scenario": "demo", "f1": 0.4, "f1_floor": 0.5}]}
        ) != [],
        "floor without a measured f1 fails": outcome(
            {**baseline, "scenarios": [{"scenario": "demo", "f1_floor": 0.5}]}
        ) != [],
        "f1 dip within tolerance passes": outcome(
            {**baseline,
             "scenarios": [{"scenario": "demo", "f1": 0.87, "f1_floor": 0.5}]}
        ) == [],
        "f1 regression vs baseline fails": outcome(
            {**baseline,
             "scenarios": [{"scenario": "demo", "f1": 0.7, "f1_floor": 0.5}]}
        ) != [],
        "changed workload skips the baseline f1 comparison": outcome(
            {**baseline, "workload": {"scale": 0.5},
             "scenarios": [{"scenario": "demo", "f1": 0.7, "f1_floor": 0.5}]}
        ) == [],
        "changed workload still enforces the f1 floor": outcome(
            {**baseline, "workload": {"scale": 0.5},
             "scenarios": [{"scenario": "demo", "f1": 0.4, "f1_floor": 0.5}]}
        ) != [],
        "cpus=1 still compares f1 against baseline": outcome(
            {**baseline, "cpus": 1,
             "scenarios": [{"scenario": "demo", "f1": 0.7, "f1_floor": 0.5}]}
        ) != [],
        "ingest rate above its floor passes": outcome(
            {**baseline,
             "serving": {**baseline["serving"], "ingest_rate": 150.0}}
        ) == [],
        "ingest rate below its floor fails": outcome(
            {**baseline,
             "serving": {**baseline["serving"], "ingest_rate": 50.0}}
        ) != [],
        "query p99 below its ceiling passes": outcome(
            {**baseline,
             "serving": {**baseline["serving"], "query_p99_s": 0.04}}
        ) == [],
        "query p99 above its ceiling fails": outcome(
            {**baseline,
             "serving": {**baseline["serving"], "query_p99_s": 0.5}}
        ) != [],
        "ceiling without a measured value fails": outcome(
            {**baseline,
             "serving": {"ingest_rate": 500.0, "ingest_rate_floor": 100.0,
                         "query_p99_s_ceiling": 0.05}}
        ) != [],
        "serving bounds bind on cpus=1 and changed workloads": outcome(
            {**baseline, "cpus": 1, "workload": {"rounds": 1},
             "serving": {**baseline["serving"], "ingest_rate": 50.0}}
        ) != [],
    }
    failed = [label for label, ok in checks.items() if not ok]
    for label in checks:
        print(f"  self-test: {label}: {'ok' if label not in failed else 'FAIL'}")
    if failed:
        print(f"self-test FAILED: {failed}", file=sys.stderr)
        return 1
    print("self-test ok")
    return 0


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--baseline",
        default="benchmarks/results",
        help="directory of committed BENCH_*.json baselines",
    )
    parser.add_argument(
        "--fresh",
        default="benchmarks/results",
        help="directory of freshly emitted BENCH_*.json files",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="fresh speedups must reach this fraction of the baseline "
        f"(default: {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--f1-tolerance",
        type=float,
        default=F1_TOLERANCE,
        help="absolute f1 dip allowed against an identical-workload "
        f"baseline (default: {F1_TOLERANCE}); self-contained f1_floor "
        "bounds are always enforced",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify the gate catches injected regressions, then exit",
    )
    args = parser.parse_args(argv)
    if args.self_test:
        return self_test()
    if not 0.0 < args.tolerance:
        print("error: tolerance must be positive", file=sys.stderr)
        return 2
    if args.f1_tolerance < 0.0:
        print("error: f1 tolerance must be non-negative", file=sys.stderr)
        return 2

    print(
        f"comparing {args.fresh} against baselines in {args.baseline} "
        f"(tolerance {args.tolerance})"
    )
    problems = compare_dirs(
        Path(args.baseline), Path(args.fresh), args.tolerance, args.f1_tolerance
    )
    if problems:
        print("\nbenchmark regressions detected:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print("benchmark trajectory ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

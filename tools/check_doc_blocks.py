#!/usr/bin/env python
"""Execute the ``python`` code blocks of markdown documentation.

Documentation that does not run is documentation that rots.  This checker
pulls every fenced ```` ```python ```` block out of the given markdown
files and executes them top to bottom, one shared namespace per file (so
a later block may build on an earlier one, exactly as a reader would).

Conventions:

* only ```` ```python ```` fences are executed; ``bash``/``text``/bare
  fences are prose;
* a block preceded (within two lines) by an HTML comment containing
  ``doc-check: skip`` is parsed for syntax but not executed — for
  snippets that need external files or services.

Used by the CI docs job:

    PYTHONPATH=src python tools/check_doc_blocks.py README.md docs/ARCHITECTURE.md
"""

from __future__ import annotations

import re
import sys
import traceback
from pathlib import Path
from typing import List, Tuple

FENCE = re.compile(r"^```(\w*)\s*$")
SKIP_MARK = "doc-check: skip"


def extract_blocks(text: str) -> List[Tuple[int, str, bool]]:
    """``(start line, source, skip?)`` for every python fence in ``text``."""
    blocks: List[Tuple[int, str, bool]] = []
    lines = text.splitlines()
    inside = False
    language = ""
    start = 0
    buffer: List[str] = []
    for number, line in enumerate(lines, start=1):
        fence = FENCE.match(line.strip())
        if fence and not inside:
            inside = True
            language = fence.group(1).lower()
            start = number + 1
            buffer = []
            continue
        if line.strip() == "```" and inside:
            inside = False
            if language == "python":
                context = "\n".join(lines[max(0, start - 4) : start - 1])
                blocks.append((start, "\n".join(buffer), SKIP_MARK in context))
            continue
        if inside:
            buffer.append(line)
    return blocks


def check_file(path: Path) -> int:
    """Run one file's blocks; returns the number of failures."""
    blocks = extract_blocks(path.read_text())
    if not blocks:
        print(f"{path}: no python blocks")
        return 0
    namespace: dict = {"__name__": f"doc_check_{path.stem}"}
    failures = 0
    for start, source, skip in blocks:
        label = f"{path}:{start}"
        try:
            code = compile(source, label, "exec")
        except SyntaxError:
            print(f"FAIL {label} (syntax)")
            traceback.print_exc()
            failures += 1
            continue
        if skip:
            print(f"skip {label} (marked)")
            continue
        try:
            exec(code, namespace)  # noqa: S102 - the whole point
        except Exception:
            print(f"FAIL {label}")
            traceback.print_exc()
            failures += 1
        else:
            print(f"ok   {label}")
    return failures


def main(argv: List[str]) -> int:
    if not argv:
        print("usage: check_doc_blocks.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    failures = 0
    for name in argv:
        failures += check_file(Path(name))
    if failures:
        print(f"{failures} documentation block(s) failed", file=sys.stderr)
        return 1
    print("all documentation blocks executed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

"""Figure 6: similarity score histograms + GMM fits across spatial detail.

The paper fixes a 90-minute window and sweeps spatial detail 4/8/12/16,
showing that with more detail the true/false clusters separate and the
detected stop threshold tightens.  This bench regenerates the component
statistics per detail level and checks the separation trend; it also runs
the paper's side note that Otsu and 2-means behave like the GMM approach.
"""

import numpy as np

from repro.core.similarity import SimilarityConfig
from repro.core.slim import SlimConfig, SlimLinker
from repro.core.threshold import otsu_threshold, two_means_threshold
from repro.data import sample_linkage_pair
from repro.eval import format_table, write_report

LEVELS = (4, 8, 12, 16)
WINDOW_MINUTES = 90.0


def _separation(weights, truth_flags):
    """Normalised gap between true- and false-link weight clusters."""
    true_weights = np.array([w for w, t in zip(weights, truth_flags) if t])
    false_weights = np.array([w for w, t in zip(weights, truth_flags) if not t])
    if not true_weights.size or not false_weights.size:
        return float("nan")
    spread = np.std(true_weights) + np.std(false_weights) + 1e-12
    return float((true_weights.mean() - false_weights.mean()) / spread)


def test_fig06_histograms(benchmark, cab_world, results_dir):
    pair = sample_linkage_pair(
        cab_world.subset(cab_world.entities[:30]),
        intersection_ratio=0.5,
        inclusion_probability=0.5,
        rng=7,
    )

    def sweep():
        rows = []
        for level in LEVELS:
            config = SlimConfig(
                similarity=SimilarityConfig(
                    window_width_minutes=WINDOW_MINUTES, spatial_level=level
                )
            )
            result = SlimLinker(config).link(pair.left, pair.right)
            weights = [edge.weight for edge in result.matched_edges]
            truth_flags = [
                pair.ground_truth.get(edge.left) == edge.right
                for edge in result.matched_edges
            ]
            model = result.threshold.model
            row = {
                "level": level,
                "matched": len(weights),
                "threshold": result.threshold.threshold,
                "separation": _separation(weights, truth_flags),
                "m1_mean": float(model.means_[0]) if model else float("nan"),
                "m2_mean": float(model.means_[1]) if model else float("nan"),
                "otsu": otsu_threshold(weights).threshold,
                "two_means": two_means_threshold(weights).threshold,
            }
            rows.append(row)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    report = format_table(
        rows,
        precision=2,
        title=(
            "Figure 6: GMM components, stop thresholds and cluster separation "
            f"per spatial detail (window {WINDOW_MINUTES:.0f} min)"
        ),
    )
    write_report(report, results_dir / "fig06_score_histograms.txt")

    # Paper shape: separation between true/false clusters grows with detail
    # (threshold detection is subpar below level 12).  At level 4 every
    # record of the one-city world falls into the same handful of cells, so
    # IDF kills all evidence and no pairs match at all — the degenerate end
    # of the paper's "too coarse to distinguish" observation.
    by_level = {row["level"]: row for row in rows}
    assert by_level[4]["matched"] == 0 or (
        by_level[4]["separation"] <= by_level[8]["separation"]
    )
    assert by_level[12]["separation"] > by_level[8]["separation"]
    # Otsu / 2-means land in the same regime as the GMM threshold at the
    # finest level (the paper: "similar results using Otsu and 2-means").
    final = rows[-1]
    assert final["m1_mean"] < final["otsu"] < final["m2_mean"] * 1.5
    assert final["m1_mean"] < final["two_means"] < final["m2_mean"] * 1.5

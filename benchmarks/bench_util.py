"""Shared helpers for the figure benchmarks."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.core.similarity import SimilarityConfig
from repro.core.slim import SlimConfig
from repro.data.sampling import LinkagePair
from repro.eval import run_slim

__all__ = ["spatiotemporal_grid", "average_records"]


def average_records(pair: LinkagePair) -> float:
    """Mean records per entity across both sides of a pair."""
    left = pair.left.num_records / max(1, pair.left.num_entities)
    right = pair.right.num_records / max(1, pair.right.num_entities)
    return (left + right) / 2.0


def spatiotemporal_grid(
    pair: LinkagePair,
    levels: Sequence[int],
    widths_minutes: Sequence[float],
    base: SimilarityConfig | None = None,
) -> List[Dict[str, float]]:
    """Run SLIM over a (spatial level x window width) grid.

    Returns one row per grid point with the four measures the paper's
    Figs. 4 and 5 plot: precision, recall, alibi entity pairs and pairwise
    bin comparisons.
    """
    base = base or SimilarityConfig()
    rows: List[Dict[str, float]] = []
    for width in widths_minutes:
        for level in levels:
            config = SlimConfig(
                similarity=base.without(
                    spatial_level=level, window_width_minutes=width
                )
            )
            measures = run_slim(pair, config)
            rows.append(
                {
                    "window_min": width,
                    "level": level,
                    "precision": measures.quality.precision,
                    "recall": measures.quality.recall,
                    "f1": measures.f1,
                    "alibi_pairs": measures.result.stats.alibi_entity_pairs,
                    "alibi_bin_pairs": measures.result.stats.alibi_bin_pairs,
                    "bin_comparisons": measures.bin_comparisons,
                    "runtime_s": measures.runtime_seconds,
                }
            )
    return rows

"""Shared helpers for the figure benchmarks.

Besides the sweep helpers, this module owns the machine-readable results
channel: :func:`write_bench_json` writes ``BENCH_<name>.json`` files into
``benchmarks/results/`` (component timings, speedups vs. the scalar
backend, environment stamps) so the performance trajectory can be tracked
across PRs by diffing or plotting the JSON series instead of scraping
ASCII tables.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Dict, List, Sequence

import numpy as np

from repro.core.similarity import SimilarityConfig
from repro.core.slim import SlimConfig
from repro.data.sampling import LinkagePair
from repro.eval import run_slim

__all__ = [
    "spatiotemporal_grid",
    "average_records",
    "write_bench_json",
    "time_callable",
]


def time_callable(fn, rounds: int = 5, warmup: int = 1) -> Dict[str, float]:
    """Best/mean wall-clock seconds of ``fn()`` over ``rounds`` runs."""
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return {
        "best_s": min(samples),
        "mean_s": sum(samples) / len(samples),
        "rounds": rounds,
    }


def write_bench_json(name: str, payload: Dict, results_dir: Path) -> Path:
    """Write one benchmark's machine-readable results.

    The file lands at ``results_dir / BENCH_<name>.json`` with an
    environment stamp merged in; the payload should carry component
    timings and, where applicable, ``speedup`` entries computed against
    the scalar (``backend="python"``) oracle.
    """
    results_dir.mkdir(parents=True, exist_ok=True)
    path = results_dir / f"BENCH_{name}.json"
    document = {
        "bench": name,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        **payload,
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def average_records(pair: LinkagePair) -> float:
    """Mean records per entity across both sides of a pair."""
    left = pair.left.num_records / max(1, pair.left.num_entities)
    right = pair.right.num_records / max(1, pair.right.num_entities)
    return (left + right) / 2.0


def spatiotemporal_grid(
    pair: LinkagePair,
    levels: Sequence[int],
    widths_minutes: Sequence[float],
    base: SimilarityConfig | None = None,
) -> List[Dict[str, float]]:
    """Run SLIM over a (spatial level x window width) grid.

    Returns one row per grid point with the four measures the paper's
    Figs. 4 and 5 plot: precision, recall, alibi entity pairs and pairwise
    bin comparisons.
    """
    base = base or SimilarityConfig()
    rows: List[Dict[str, float]] = []
    for width in widths_minutes:
        for level in levels:
            config = SlimConfig(
                similarity=base.without(
                    spatial_level=level, window_width_minutes=width
                )
            )
            measures = run_slim(pair, config)
            rows.append(
                {
                    "window_min": width,
                    "level": level,
                    "precision": measures.quality.precision,
                    "recall": measures.quality.recall,
                    "f1": measures.f1,
                    "alibi_pairs": measures.result.stats.alibi_entity_pairs,
                    "alibi_bin_pairs": measures.result.stats.alibi_bin_pairs,
                    "bin_comparisons": measures.bin_comparisons,
                    "runtime_s": measures.runtime_seconds,
                }
            )
    return rows

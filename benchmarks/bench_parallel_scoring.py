"""Parallel scoring-stage benchmark: the executor speedup curve.

Runs the scoring stage of the dense cab workload under every execution
backend (:mod:`repro.exec`) at 1/2/4/8 workers, asserting **bit-identical
edges** against the serial oracle on every configuration, and records the
wall-clock curve machine-readably in
``benchmarks/results/BENCH_parallel_scoring.json``.

The headline entry is ``speedup`` — the ``"process"`` backend at 4
workers against ``"serial"`` (the acceptance gate tracks >= 2x).  The
floor is only enforceable on parallel hardware: when the process has
fewer than ``PARALLEL_CPUS_NEEDED`` usable CPUs (``cpus`` in the JSON),
the curve is still measured and recorded but the floor check is skipped —
a single-core container can validate *parity*, not *parallelism*.

Run stand-alone (the CI job does, on multi-core runners):

    PYTHONPATH=src python benchmarks/bench_parallel_scoring.py --smoke

or through pytest:

    PYTHONPATH=src python -m pytest -q benchmarks/bench_parallel_scoring.py
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from bench_util import write_bench_json

import repro.pipeline.stages as stages
from repro.data import sample_linkage_pair
from repro.data.synth import default_cab_world
from repro.exec import Executor, create_executor
from repro.pipeline import LinkageConfig, PrepareStage, ScoringStage, candidate_stages
from repro.pipeline.context import LinkageContext

#: Wall-clock floor for the headline (process backend, 4 workers); the
#: true curve is what the JSON records — like the other bench floors this
#: exists to catch gross regressions, not to measure.
DEFAULT_SPEEDUP_FLOOR = 2.0

#: Enforcing a parallel floor needs parallel hardware.
PARALLEL_CPUS_NEEDED = 2

#: Shard granularity for this bench: small enough that 8 workers see
#: dozens of shards on the workload below (shard boundaries are identical
#: across backends, so parity is unaffected).
SHARD_SIZE = 512

WORKER_CURVE = (1, 2, 4, 8)

RESULTS_DIR = Path(__file__).parent / "results"


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _workload(num_taxis: int, seed: int = 7):
    """A dense cab pair whose brute-force candidate set spans many
    shards, with scoring dominating end-to-end time."""
    world = default_cab_world(
        num_taxis=num_taxis, duration_days=1.0,
        sample_period_seconds=150, seed=seed,
    ).generate()
    return sample_linkage_pair(
        world, intersection_ratio=0.5, inclusion_probability=0.5, rng=seed
    )


def _prepare(pair, config: LinkageConfig) -> LinkageContext:
    """Run prepare + candidates once; scoring is what we time."""
    context = LinkageContext(config=config, left=pair.left, right=pair.right)
    PrepareStage(config).run(context)
    candidate_stage = candidate_stages.get(config.resolved_candidates())(config)
    candidate_stage.run(context)
    # Materialise the array views so every timed run starts warm.
    context.left_corpus.arrays()
    context.right_corpus.arrays()
    return context


def _score_once(
    prepared: LinkageContext,
    config: LinkageConfig,
    executor: Optional[Executor],
) -> Tuple[float, List]:
    """One scoring-stage run over the prepared context; returns
    (wall seconds, positive-score edges)."""
    context = LinkageContext(
        config=config,
        windowing=prepared.windowing,
        total_windows=prepared.total_windows,
        left_histories=prepared.left_histories,
        right_histories=prepared.right_histories,
        left_corpus=prepared.left_corpus,
        right_corpus=prepared.right_corpus,
        candidates=prepared.candidates,
        executor=executor,
    )
    stage = ScoringStage(config)
    start = time.perf_counter()
    stage.run(context)
    return time.perf_counter() - start, context.edges


def _best_of(rounds: int, fn) -> Tuple[float, List]:
    best = float("inf")
    edges: List = []
    for _ in range(rounds):
        elapsed, edges = fn()
        best = min(best, elapsed)
    return best, edges


def run_parallel_scoring_bench(
    results_dir: Path, num_taxis: int = 160, rounds: int = 3
) -> Tuple[float, Dict]:
    """Measure the curve; returns (headline speedup, JSON payload)."""
    original_block = stages.SCORE_BLOCK_SIZE
    stages.SCORE_BLOCK_SIZE = SHARD_SIZE
    try:
        return _run_measurements(results_dir, num_taxis, rounds)
    finally:
        stages.SCORE_BLOCK_SIZE = original_block


def _run_measurements(
    results_dir: Path, num_taxis: int, rounds: int
) -> Tuple[float, Dict]:
    config = LinkageConfig(executor="serial")
    pair = _workload(num_taxis)
    prepared = _prepare(pair, config)
    candidate_count = len(prepared.candidates)

    serial_best, serial_edges = _best_of(
        rounds, lambda: _score_once(prepared, config, None)
    )

    curve: Dict[str, Dict[str, Dict[str, float]]] = {}
    for backend in ("thread", "process"):
        curve[backend] = {}
        for workers in WORKER_CURVE:
            parallel_config = config.without(executor=backend, workers=workers)
            executor = create_executor(backend, workers)
            try:
                best, edges = _best_of(
                    rounds,
                    lambda: _score_once(prepared, parallel_config, executor),
                )
            finally:
                executor.shutdown()
            # Parity before performance: a fast wrong answer is no answer.
            assert edges == serial_edges, (
                f"{backend}@{workers} edges diverged from serial"
            )
            curve[backend][str(workers)] = {
                "best_s": best,
                "speedup": serial_best / best,
            }

    headline = curve["process"]["4"]["speedup"]
    payload = {
        "cpus": _usable_cpus(),
        "workload": {
            "world": "cab",
            "num_taxis": num_taxis,
            "entities_left": len(pair.left.entities),
            "entities_right": len(pair.right.entities),
            "candidate_pairs": candidate_count,
            "shard_size": SHARD_SIZE,
            "shards": -(-candidate_count // SHARD_SIZE),
        },
        "rounds": rounds,
        "serial": {"best_s": serial_best},
        "thread": curve["thread"],
        "process": curve["process"],
        "speedup": headline,
        "parity": "edges bit-identical across all backends and worker counts",
    }
    write_bench_json("parallel_scoring", payload, results_dir)
    return headline, payload


def test_parallel_scoring_speedup(results_dir):
    """CI smoke: parity on every backend/worker combination always; the
    wall-clock floor only where parallel hardware exists."""
    floor = float(os.environ.get("BENCH_SPEEDUP_FLOOR", DEFAULT_SPEEDUP_FLOOR))
    speedup, payload = run_parallel_scoring_bench(
        results_dir, num_taxis=60, rounds=1
    )
    assert payload["workload"]["shards"] >= 2
    if payload["cpus"] >= PARALLEL_CPUS_NEEDED:
        assert speedup >= floor, (
            f"process@4 speedup {speedup:.2f}x below the {floor}x floor"
        )


def main(argv: List[str]) -> int:
    smoke = "--smoke" in argv
    headline, payload = run_parallel_scoring_bench(
        RESULTS_DIR,
        num_taxis=60 if smoke else 160,
        rounds=1 if smoke else 3,
    )
    serial_ms = payload["serial"]["best_s"] * 1000
    print(
        f"serial scoring: {serial_ms:.0f} ms over "
        f"{payload['workload']['candidate_pairs']} pairs "
        f"({payload['workload']['shards']} shards, "
        f"{payload['cpus']} usable cpus)"
    )
    for backend in ("thread", "process"):
        points = ", ".join(
            f"{workers}w {entry['speedup']:.2f}x"
            for workers, entry in payload[backend].items()
        )
        print(f"{backend}: {points}")
    floor = float(os.environ.get("BENCH_SPEEDUP_FLOOR", DEFAULT_SPEEDUP_FLOOR))
    if payload["cpus"] < PARALLEL_CPUS_NEEDED:
        print(
            f"note: {payload['cpus']} usable cpu(s) — parity verified, "
            "speedup floor not enforceable on serial hardware"
        )
    elif headline < floor:
        print(f"FAIL: process@4 {headline:.2f}x below the {floor}x floor",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

"""Micro-benchmarks of SLIM's building blocks.

Times each pipeline stage in isolation — history construction, the
similarity kernel (both scoring backends), LSH signature construction and
bucketing, the three bipartite matchers, and the GMM threshold fit — so
performance regressions can be localised, and the greedy-vs-exact matcher
ablation (a design choice DESIGN.md calls out) has numbers attached.

The pairwise-scoring comparison additionally writes
``BENCH_pairwise_scoring.json`` (see :func:`bench_util.write_bench_json`)
recording the scalar-vs-numpy component timings and the speedup, the
headline number this repo's performance PRs track.
"""

import os

import numpy as np
import pytest

from bench_util import time_callable, write_bench_json
from repro.core.corpus import HistoryCorpus
from repro.core.history import build_histories
from repro.core.matching import Edge, greedy_max_matching, hungarian_matching, networkx_matching
from repro.core.similarity import SimilarityConfig, SimilarityEngine
from repro.core.threshold import gmm_stop_threshold
from repro.eval import format_table, write_report
from repro.lsh import LshConfig, LshIndex, SignatureSpec, build_signature
from repro.temporal import common_windowing


def _setup(pair, level=12, width_seconds=900.0):
    windowing = common_windowing(
        (pair.left.time_range(), pair.right.time_range()), width_seconds
    )
    left = build_histories(pair.left, windowing, level)
    right = build_histories(pair.right, windowing, level)
    return windowing, left, right


def _engine(left, right, backend):
    return SimilarityEngine(
        HistoryCorpus(left, 12),
        HistoryCorpus(right, 12),
        SimilarityConfig(backend=backend),
    )


def test_micro_history_build(benchmark, cab_pair):
    windowing, _, _ = _setup(cab_pair)
    benchmark(lambda: build_histories(cab_pair.left, windowing, 12))


@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_micro_similarity_kernel(benchmark, cab_pair, backend):
    windowing, left, right = _setup(cab_pair)
    engine = _engine(left, right, backend)
    pairs = [(a, b) for a in list(left)[:5] for b in list(right)[:5]]
    # Warm the caches (scalar distance LRU / kernel array views) once so
    # the benchmark measures steady state.
    engine.score_batch(pairs)
    benchmark(lambda: engine.score_batch(pairs))


def test_micro_pairwise_scoring_speedup(cab_pair, results_dir):
    """The headline component: score a block of candidate pairs with both
    backends, assert identical results and the targeted >=5x speedup, and
    record the numbers machine-readably."""
    _, left, right = _setup(cab_pair)
    pairs = [(a, b) for a in list(left)[:10] for b in list(right)[:10]]

    scalar = _engine(left, right, "python")
    vectorized = _engine(left, right, "numpy")
    scalar_scores = scalar.score_batch(pairs)  # also warms the LRU
    vector_scores = vectorized.score_batch(pairs)
    worst = max(
        abs(a - b) for a, b in zip(scalar_scores, vector_scores)
    )
    assert worst <= 1e-9 + 1e-9 * max(map(abs, scalar_scores))

    timing_scalar = time_callable(lambda: scalar.score_batch(pairs), rounds=5)
    timing_vector = time_callable(lambda: vectorized.score_batch(pairs), rounds=5)
    speedup = timing_scalar["best_s"] / timing_vector["best_s"]
    write_bench_json(
        "pairwise_scoring",
        {
            "workload": {"world": "cab", "pairs": len(pairs), "rounds": 5},
            "pairs": len(pairs),
            "python_backend": timing_scalar,
            "numpy_backend": timing_vector,
            "speedup": speedup,
            "max_score_diff": worst,
        },
        results_dir,
    )
    write_report(
        format_table(
            [
                {"backend": "python (oracle)", "best_s": timing_scalar["best_s"]},
                {
                    "backend": "numpy (batch kernel)",
                    "best_s": timing_vector["best_s"],
                    "speedup": speedup,
                },
            ],
            precision=5,
            title=f"Pairwise scoring, {len(pairs)}-pair block (cab workload)",
        ),
        results_dir / "micro_pairwise_scoring.txt",
    )
    # The >=5x target holds with margin on a quiet machine (~6.5x); CI's
    # shared runners set BENCH_SPEEDUP_FLOOR lower so timing noise cannot
    # fail the build — the JSON above records the real number either way.
    floor = float(os.environ.get("BENCH_SPEEDUP_FLOOR", "5.0"))
    assert speedup >= floor, f"batch kernel speedup regressed: {speedup:.2f}x"


def test_micro_signature_build(benchmark, cab_pair):
    windowing, left, _ = _setup(cab_pair, level=14)
    latest = max(cab_pair.left.time_range()[1], cab_pair.right.time_range()[1])
    spec = SignatureSpec(0, windowing.index_of(latest) + 1, 8, 14)
    histories = list(left.values())
    benchmark(lambda: [build_signature(h, spec) for h in histories])


def test_micro_lsh_index(benchmark, cab_pair):
    windowing, left, right = _setup(cab_pair, level=14)
    latest = max(cab_pair.left.time_range()[1], cab_pair.right.time_range()[1])
    config = LshConfig(threshold=0.5, step_windows=8, spatial_level=14)
    spec = SignatureSpec(0, windowing.index_of(latest) + 1, 8, 14)

    def run():
        index = LshIndex(config, spec)
        index.add_histories(left, right)
        return index.candidate_pairs()

    benchmark(run)


def _random_edges(n_left=60, n_right=60, seed=5):
    rng = np.random.default_rng(seed)
    return [
        Edge(f"l{i}", f"r{j}", float(rng.random()))
        for i in range(n_left)
        for j in range(n_right)
    ]


def test_micro_matching_greedy(benchmark):
    edges = _random_edges()
    benchmark(lambda: greedy_max_matching(edges))


def test_micro_matching_hungarian(benchmark):
    edges = _random_edges()
    benchmark(lambda: hungarian_matching(edges))


def test_micro_matching_networkx(benchmark):
    edges = _random_edges()
    benchmark(lambda: networkx_matching(edges))


def test_micro_matching_quality_ablation(benchmark, results_dir):
    """Design-choice ablation: how much matching weight does the paper's
    greedy heuristic give up against the exact matchers?"""
    edges = _random_edges()

    def compare():
        greedy = sum(e.weight for e in greedy_max_matching(edges))
        exact = sum(e.weight for e in hungarian_matching(edges))
        return greedy, exact

    greedy, exact = benchmark.pedantic(compare, rounds=1, iterations=1)
    write_report(
        format_table(
            [
                {
                    "matcher": "greedy (paper)",
                    "total_weight": greedy,
                    "fraction_of_exact": greedy / exact,
                },
                {"matcher": "hungarian", "total_weight": exact, "fraction_of_exact": 1.0},
            ],
            precision=4,
            title="Matching ablation: greedy vs exact total weight (random bipartite)",
        ),
        results_dir / "micro_matching_ablation.txt",
    )
    # Greedy is known-good on separable score distributions; even on random
    # weights it stays within a modest factor of optimal.
    assert greedy >= 0.8 * exact


def test_micro_gmm_threshold(benchmark, rng_seed=3):
    rng = np.random.default_rng(rng_seed)
    weights = np.concatenate([rng.normal(5, 1.5, 150), rng.normal(40, 5, 100)])
    benchmark(lambda: gmm_stop_threshold(weights))

"""Dataset statistics table (the Sec. 5.1 corpus descriptions).

The paper's evaluation setup quotes, for each corpus: entity counts per
side, common entities, records, and average records per entity under the
default sampling parameters (ratio 0.5, inclusion 0.5).  This bench
regenerates that table for the two synthetic stand-in worlds, and checks
the properties the substitution is supposed to preserve: Cab dense
(hundreds of records/entity), SM sparse (~12-15), both sides symmetric,
common fraction = ratio.
"""

from bench_util import average_records

from repro.eval import format_table, write_report


def test_table_dataset_statistics(benchmark, cab_world, sm_world, cab_pair, sm_pair, results_dir):
    def build():
        rows = []
        for name, world, pair in (
            ("cab", cab_world, cab_pair),
            ("sm", sm_world, sm_pair),
        ):
            stats = world.stats()
            rows.append(
                {
                    "setup": name,
                    "world_entities": stats.num_entities,
                    "world_records": stats.num_records,
                    "span_days": round(stats.span_days, 2),
                    "left_entities": pair.left.num_entities,
                    "right_entities": pair.right.num_entities,
                    "common": pair.num_common,
                    "avg_records": round(average_records(pair), 1),
                }
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    write_report(
        format_table(
            rows,
            precision=2,
            title="Dataset statistics under default sampling (ratio 0.5, inclusion 0.5)",
        ),
        results_dir / "table_datasets.txt",
    )

    cab, sm = rows[0], rows[1]
    # Cab is dense, SM sparse (the property each substitution must keep).
    assert cab["avg_records"] > 100
    assert 5 <= sm["avg_records"] <= 30
    # Sides are symmetric and the common fraction tracks the 0.5 ratio.
    for row in rows:
        assert abs(row["left_entities"] - row["right_entities"]) <= max(
            3, 0.1 * row["left_entities"]
        )
        fraction = row["common"] / row["left_entities"]
        assert 0.35 <= fraction <= 0.65

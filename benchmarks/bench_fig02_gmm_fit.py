"""Figure 2: GMM fit over matched-edge similarity scores.

The paper's Fig. 2 shows the histogram of matched-edge weights, the two
fitted GMM components (false-positive and true-positive links) and the
detected stop threshold.  This bench regenerates the underlying data: the
component parameters, the threshold, and a text histogram annotated with
ground truth — confirming the threshold falls between the clusters.
"""

import numpy as np

from repro.core.slim import SlimConfig, SlimLinker
from repro.eval import format_table, write_report


def _histogram_rows(weights, truth_flags, model, threshold, bins=12):
    edges = np.linspace(min(weights), max(weights) + 1e-9, bins + 1)
    rows = []
    for k in range(bins):
        mask = [(edges[k] <= w < edges[k + 1]) for w in weights]
        true_count = sum(1 for m, t in zip(mask, truth_flags) if m and t)
        false_count = sum(1 for m, t in zip(mask, truth_flags) if m and not t)
        rows.append(
            {
                "bin_low": edges[k],
                "true_links": true_count,
                "false_links": false_count,
                "above_threshold": int(edges[k] >= threshold),
            }
        )
    return rows


def test_fig02_gmm_fit(benchmark, cab_pair, results_dir):
    linker = SlimLinker(SlimConfig())

    result = benchmark.pedantic(
        lambda: linker.link(cab_pair.left, cab_pair.right), rounds=1, iterations=1
    )

    weights = [edge.weight for edge in result.matched_edges]
    truth_flags = [
        cab_pair.ground_truth.get(edge.left) == edge.right
        for edge in result.matched_edges
    ]
    decision = result.threshold
    model = decision.model
    assert model is not None, "expected a non-degenerate GMM fit"

    lines = ["Figure 2: GMM fit over matched edge weights", ""]
    lines.append(
        f"component m1 (false links): weight={model.weights_[0]:.3f} "
        f"mean={model.means_[0]:.2f} std={np.sqrt(model.variances_[0]):.2f}"
    )
    lines.append(
        f"component m2 (true links):  weight={model.weights_[1]:.3f} "
        f"mean={model.means_[1]:.2f} std={np.sqrt(model.variances_[1]):.2f}"
    )
    lines.append(
        f"detected stop threshold: {decision.threshold:.2f} "
        f"(expected P={decision.expected_precision:.3f}, "
        f"R={decision.expected_recall:.3f}, F1={decision.expected_f1:.3f})"
    )
    lines.append("")
    lines.append(
        format_table(
            _histogram_rows(weights, truth_flags, model, decision.threshold),
            precision=1,
            title="weight histogram vs ground truth",
        )
    )

    # Shape checks mirroring the figure: true links sit in the upper
    # component, the threshold separates the clusters.
    true_weights = [w for w, t in zip(weights, truth_flags) if t]
    false_weights = [w for w, t in zip(weights, truth_flags) if not t]
    if true_weights and false_weights:
        lines.append("")
        lines.append(
            f"mean true-link weight:  {np.mean(true_weights):.2f}"
        )
        lines.append(
            f"mean false-link weight: {np.mean(false_weights):.2f}"
        )
        assert np.mean(true_weights) > np.mean(false_weights)
        kept_true = sum(1 for w in true_weights if w >= decision.threshold)
        kept_false = sum(1 for w in false_weights if w >= decision.threshold)
        lines.append(
            f"links kept: {kept_true} true, {kept_false} false "
            f"of {len(weights)} matched"
        )
        assert kept_true / len(true_weights) >= 0.7
        assert kept_false / max(1, len(false_weights)) <= 0.3

    write_report("\n".join(lines), results_dir / "fig02_gmm_fit.txt")

"""Fault-recovery benchmark: what surviving injected faults costs.

Runs the full linkage pipeline on the dense cab workload under the
``"thread"`` and ``"process"`` backends twice each — once fault-free,
once under a deterministic fault plan (a transient exception plus a
worker crash on the first two score blocks) — asserting **bit-identical
links** between the two runs, and records the recovery overhead
machine-readably in ``benchmarks/results/BENCH_fault_recovery.json``.

The headline entry is ``overhead_ratio`` — faulted wall-clock over clean
wall-clock, worst backend.  Recovery re-executes only the sabotaged
blocks (plus, for a worker crash, the in-flight collateral), so the
ratio should stay small; the regression gate
(``tools/check_bench_regression.py``) fails when it grows far beyond the
committed baseline.  The ``parity`` object is hard-checked by the same
gate: a recovery that changes the links is a correctness bug, not a
performance number.

Run stand-alone:

    PYTHONPATH=src python benchmarks/bench_fault_recovery.py --smoke

or through pytest:

    PYTHONPATH=src python -m pytest -q benchmarks/bench_fault_recovery.py
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Dict, List, Tuple

from bench_util import write_bench_json

import repro.pipeline.stages as stages
from repro.data import sample_linkage_pair
from repro.data.synth import default_cab_world
from repro.exec import FaultPlan, inject
from repro.pipeline import LinkageConfig, LinkagePipeline

#: The injected schedule: a transient exception on the first score block
#: and a worker crash on the second (executor-lifetime ordinals — the
#: scoring stage builds a fresh executor per run, so they always land).
FAULT_SPEC = "transient@0;crash@1"

#: Shard granularity: small enough that the workload spans several score
#: blocks, so both sabotaged ordinals exist and recovery has real work.
SHARD_SIZE = 256

BACKENDS = ("thread", "process")

RESULTS_DIR = Path(__file__).parent / "results"


def _workload(num_taxis: int, seed: int = 7):
    world = default_cab_world(
        num_taxis=num_taxis, duration_days=1.0,
        sample_period_seconds=150, seed=seed,
    ).generate()
    return sample_linkage_pair(
        world, intersection_ratio=0.5, inclusion_probability=0.5, rng=seed
    )


def _run_once(pair, config: LinkageConfig, plan: FaultPlan):
    """One full pipeline run under ``plan`` (empty plan = fault-free —
    and masks any ``REPRO_FAULTS`` the environment carries)."""
    with inject(plan):
        start = time.perf_counter()
        report = LinkagePipeline(config).run(pair.left, pair.right)
    return time.perf_counter() - start, report


def _best_run(rounds: int, pair, config: LinkageConfig, plan: FaultPlan):
    best = float("inf")
    report = None
    for _ in range(rounds):
        elapsed, report = _run_once(pair, config, plan)
        best = min(best, elapsed)
    return best, report


def run_fault_recovery_bench(
    results_dir: Path, num_taxis: int = 60, rounds: int = 2
) -> Tuple[float, Dict]:
    """Measure recovery overhead; returns (headline ratio, JSON payload)."""
    original_block = stages.SCORE_BLOCK_SIZE
    stages.SCORE_BLOCK_SIZE = SHARD_SIZE
    try:
        return _run_measurements(results_dir, num_taxis, rounds)
    finally:
        stages.SCORE_BLOCK_SIZE = original_block


def _run_measurements(
    results_dir: Path, num_taxis: int, rounds: int
) -> Tuple[float, Dict]:
    pair = _workload(num_taxis)
    plan = FaultPlan.from_spec(FAULT_SPEC)
    clean_plan = FaultPlan()

    per_backend: Dict[str, Dict[str, object]] = {}
    links_identical = True
    all_recovered = True
    for backend in BACKENDS:
        config = LinkageConfig(executor=backend, workers=2)
        clean_s, clean = _best_run(rounds, pair, config, clean_plan)
        faulted_s, faulted = _best_run(rounds, pair, config, plan)
        shards = faulted.extras["executor"]["shards"]
        assert shards > 2, (
            f"{backend}: only {shards} score blocks — the fault plan "
            "needs ordinals 0 and 1 to exist"
        )
        # Parity before performance: recovery must not change the answer.
        identical = (
            faulted.links == clean.links
            and faulted.edges == clean.edges
            and faulted.stats == clean.stats
        )
        assert identical, f"{backend}: faulted links diverged from clean"
        links_identical = links_identical and identical
        counters = faulted.extras.get("faults", {})
        all_recovered = all_recovered and not counters.get("task_errors", 0)
        per_backend[backend] = {
            "clean_s": clean_s,
            "faulted_s": faulted_s,
            "overhead_ratio": faulted_s / clean_s,
            "recovery": counters,
        }

    headline = max(
        entry["overhead_ratio"] for entry in per_backend.values()
    )
    payload = {
        "workload": {
            "world": "cab",
            "num_taxis": num_taxis,
            "entities_left": len(pair.left.entities),
            "entities_right": len(pair.right.entities),
            "shard_size": SHARD_SIZE,
            "fault_spec": FAULT_SPEC,
        },
        "rounds": rounds,
        **per_backend,
        "overhead_ratio": headline,
        "parity": {
            "links_identical": links_identical,
            "all_tasks_recovered": all_recovered,
            "max_score_delta": 0.0,
        },
    }
    write_bench_json("fault_recovery", payload, results_dir)
    return headline, payload


def test_fault_recovery_overhead(results_dir):
    """CI smoke: parity always; recovery must actually have happened."""
    headline, payload = run_fault_recovery_bench(
        results_dir, num_taxis=60, rounds=1
    )
    assert payload["parity"]["links_identical"] is True
    assert payload["parity"]["all_tasks_recovered"] is True
    for backend in BACKENDS:
        assert payload[backend]["recovery"]["faults"] >= 2
    assert headline > 0.0


def main(argv: List[str]) -> int:
    smoke = "--smoke" in argv
    headline, payload = run_fault_recovery_bench(
        RESULTS_DIR,
        num_taxis=60 if smoke else 120,
        rounds=1 if smoke else 3,
    )
    for backend in BACKENDS:
        entry = payload[backend]
        recovery = entry["recovery"]
        print(
            f"{backend}: clean {entry['clean_s'] * 1000:.0f} ms, "
            f"faulted {entry['faulted_s'] * 1000:.0f} ms "
            f"({entry['overhead_ratio']:.2f}x; "
            f"{recovery.get('faults', 0)} faults, "
            f"{recovery.get('retries', 0)} retries, "
            f"{recovery.get('worker_crashes', 0)} crashes)"
        )
    print(
        f"worst-case recovery overhead {headline:.2f}x; links bit-identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

"""Auto-tuning validation (Sec. 3.3) and design-choice ablations.

Three studies beyond the numbered figures:

1. **Spatial-level auto-tuning** — the paper claims the elbow of the
   pair/self-similarity-ratio curve "detects the most accurate spatial
   detail level that does not add overhead".  We sweep levels, link at
   each, and check the tuned level reaches (near-)peak F1 at a fraction of
   the finest level's comparisons.
2. **Stop-threshold methods** — GMM (paper default) vs Otsu vs 2-means vs
   no threshold; the paper reports the first three behave alike, and the
   ablation quantifies what "none" (prior work's implicit choice) costs in
   precision at partial overlap.
3. **POIS comparison** — the related-work baseline (ref [32]) against SLIM
   on the default pair, illustrating the cost of a full matching without a
   stop threshold.
"""

from repro.baselines import PoisLinker
from repro.core.similarity import SimilarityConfig
from repro.core.slim import SlimConfig
from repro.core.tuning import auto_spatial_level
from repro.data import sample_linkage_pair
from repro.eval import format_table, precision_recall_f1, run_slim, write_report

LEVELS = (4, 6, 8, 10, 12, 14, 16, 18, 20)


def test_auto_tuning_finds_efficient_level(benchmark, cab_world, results_dir):
    world = cab_world.subset(cab_world.entities[:30])
    pair = sample_linkage_pair(world, 0.5, 0.5, rng=7)

    def study():
        choice = auto_spatial_level(
            world, levels=LEVELS, sample_size=8, pairs_per_entity=6, rng=7
        )
        sweep = []
        for level in LEVELS:
            measures = run_slim(
                pair, SlimConfig(similarity=SimilarityConfig(spatial_level=level))
            )
            sweep.append(
                {
                    "level": level,
                    "f1": measures.f1,
                    "bin_comparisons": measures.bin_comparisons,
                    "ratio_curve": choice.curve()[level],
                    "chosen": "<--" if level == choice.level else "",
                }
            )
        return choice, sweep

    choice, sweep = benchmark.pedantic(study, rounds=1, iterations=1)
    write_report(
        format_table(
            sweep, precision=4, title="Auto-tuning: ratio curve, F1 and cost per level"
        ),
        results_dir / "tuning_spatial_level.txt",
    )

    by_level = {row["level"]: row for row in sweep}
    best_f1 = max(row["f1"] for row in sweep)
    tuned = by_level[choice.level]
    finest = by_level[LEVELS[-1]]
    # Near-peak accuracy...
    assert tuned["f1"] >= best_f1 - 0.1
    # ...at a fraction of the finest level's comparison cost.
    assert tuned["bin_comparisons"] < 0.8 * finest["bin_comparisons"]


def test_threshold_method_ablation(benchmark, cab_world, results_dir):
    pair = sample_linkage_pair(
        cab_world.subset(cab_world.entities[:30]), 0.5, 0.5, rng=7
    )

    def study():
        rows = []
        for method in ("gmm", "otsu", "two_means", "none"):
            measures = run_slim(pair, SlimConfig(threshold_method=method))
            rows.append(
                {
                    "method": method,
                    "precision": measures.quality.precision,
                    "recall": measures.quality.recall,
                    "f1": measures.f1,
                    "links": len(measures.result.links),
                    "threshold": measures.result.threshold.threshold,
                }
            )
        return rows

    rows = benchmark.pedantic(study, rounds=1, iterations=1)
    write_report(
        format_table(rows, precision=3, title="Stop-threshold method ablation"),
        results_dir / "threshold_method_ablation.txt",
    )

    by_method = {row["method"]: row for row in rows}
    # The paper: GMM / Otsu / 2-means behave alike.
    for method in ("otsu", "two_means"):
        assert abs(by_method[method]["f1"] - by_method["gmm"]["f1"]) <= 0.25
    # No threshold = full matching: every non-overlapping entity becomes a
    # false link, so precision must drop at intersection ratio 0.5.
    assert by_method["none"]["precision"] <= by_method["gmm"]["precision"]
    assert by_method["none"]["links"] >= by_method["gmm"]["links"]


def test_pois_comparison(benchmark, cab_world, results_dir):
    pair = sample_linkage_pair(
        cab_world.subset(cab_world.entities[:30]), 0.5, 0.5, rng=7
    )

    def study():
        slim = run_slim(pair, SlimConfig())
        pois = PoisLinker().link(pair.left, pair.right)
        pois_quality = precision_recall_f1(pois.links, pair.ground_truth)
        return [
            {
                "method": "SLIM",
                "precision": slim.quality.precision,
                "recall": slim.quality.recall,
                "f1": slim.f1,
            },
            {
                "method": "POIS",
                "precision": pois_quality.precision,
                "recall": pois_quality.recall,
                "f1": pois_quality.f1,
            },
        ]

    rows = benchmark.pedantic(study, rounds=1, iterations=1)
    write_report(
        format_table(rows, precision=3, title="SLIM vs POIS (ref [32]) on the default Cab pair"),
        results_dir / "pois_comparison.txt",
    )
    slim_row, pois_row = rows
    assert slim_row["precision"] >= pois_row["precision"]
    assert slim_row["f1"] >= pois_row["f1"] - 0.05

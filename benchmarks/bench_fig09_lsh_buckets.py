"""Figure 9: LSH speed-up as a function of the bucket-table size, for
several LSH similarity thresholds — Cab (9a) and SM (9b).

Paper shape (Sec. 5.3.2):
* F1 is unaffected by the bucket count (identical bands always collide);
  speed-up *grows* with buckets because accidental hash collisions vanish;
* higher similarity thresholds prune more pairs (larger speed-up);
* the SM world reaches far larger factors than Cab (more entities).
"""

from repro.core.slim import SlimConfig
from repro.data import sample_linkage_pair
from repro.eval import format_table, relative_f1, run_slim, speedup, write_report
from repro.lsh import LshConfig

BUCKETS = (2**8, 2**10, 2**12, 2**14, 2**18)
THRESHOLDS = (0.4, 0.6, 0.8)
SIG_LEVEL = 14
STEP = 16


def _sweep(pair, brute):
    rows = []
    for threshold in THRESHOLDS:
        for buckets in BUCKETS:
            config = SlimConfig(
                lsh=LshConfig(
                    threshold=threshold,
                    step_windows=STEP,
                    spatial_level=SIG_LEVEL,
                    num_buckets=buckets,
                )
            )
            measures = run_slim(pair, config)
            rows.append(
                {
                    "threshold": threshold,
                    "buckets": buckets,
                    "speedup": speedup(
                        brute.bin_comparisons, measures.bin_comparisons
                    ),
                    "relative_f1": relative_f1(measures.f1, brute.f1),
                    "candidates": measures.result.candidate_pairs,
                }
            )
    return rows


def _check_shape(rows):
    for threshold in THRESHOLDS:
        series = [r for r in rows if r["threshold"] == threshold]
        small = next(r for r in series if r["buckets"] == BUCKETS[0])
        large = next(r for r in series if r["buckets"] == BUCKETS[-1])
        # More buckets -> fewer accidental candidates -> >= speed-up.
        assert large["candidates"] <= small["candidates"]
        assert large["speedup"] >= small["speedup"] * 0.99


def test_fig09a_cab(benchmark, cab_world, results_dir):
    pair = sample_linkage_pair(
        cab_world.subset(cab_world.entities[:30]), 0.5, 0.5, rng=7
    )
    brute = run_slim(pair, SlimConfig())
    rows = benchmark.pedantic(lambda: _sweep(pair, brute), rounds=1, iterations=1)
    write_report(
        format_table(rows, precision=3, title="Figure 9a: Cab - speed-up vs bucket count"),
        results_dir / "fig09a_cab.txt",
    )
    _check_shape(rows)


def test_fig09b_sm(benchmark, sm_world, results_dir):
    pair = sample_linkage_pair(
        sm_world, 0.5, 0.5, rng=11, timestamp_jitter_seconds=240.0
    )
    brute = run_slim(pair, SlimConfig())
    rows = benchmark.pedantic(lambda: _sweep(pair, brute), rounds=1, iterations=1)
    write_report(
        format_table(rows, precision=3, title="Figure 9b: SM - speed-up vs bucket count"),
        results_dir / "fig09b_sm.txt",
    )
    _check_shape(rows)
    # SM (many entities) reaches larger factors than the small Cab world.
    assert max(r["speedup"] for r in rows) > 20.0

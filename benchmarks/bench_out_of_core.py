"""Out-of-core benchmark: disk-backed corpus residency + restart speedup.

Two claims from the persistence layer, measured on one synthetic world:

* **Bounded residency** — a ``storage="disk"`` linker holds corpus flat
  columns in read-only memmaps plus a small chunk LRU; its accountable
  in-RAM footprint (the LRU ledger behind
  ``memory_stats()["*_flat_resident_bytes"]``) must stay a small
  fraction of the in-core flats.  The workload is sized so the flats
  exceed the chunk-cache budget by at least ``WORKLOAD_FACTOR`` (>= 10x
  — a corpus that genuinely cannot fit its RAM budget), and the emitted
  ``resident_ratio`` carries a self-contained ``resident_ratio_ceiling``
  the regression gate enforces at any scale.
* **Restart speedup** — rebuilding full linker state (histories,
  corpora, LSH placements, score cache, relink diagnostics) from a
  whole-linker snapshot (``StreamingLinker.restore``) must beat
  replaying the stream from scratch; ``restore_speedup`` carries its own
  ``restore_speedup_floor``.  Parity is asserted before anything is
  reported: the disk arm must produce links and scores bit-identical to
  the in-core reference, and both restart arms must relink one *fresh*
  round of data identically — the restored state is equivalent, not
  merely faster to reach.

Results land in ``benchmarks/results/BENCH_out_of_core.json``.

Run stand-alone (the CI tests job does):

    PYTHONPATH=src python benchmarks/bench_out_of_core.py --smoke

or through pytest:

    PYTHONPATH=src python -m pytest -q benchmarks/bench_out_of_core.py
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from tempfile import TemporaryDirectory
from typing import Dict, List, Tuple

from bench_util import write_bench_json
from repro.core.streaming import StreamingLinker
from repro.data import Record
from repro.pipeline import LinkageConfig

RESULTS_DIR = Path(__file__).parent / "results"

WIDTH = 900.0
WINDOWS_PER_ROUND = 16

#: Full-scale workload; smoke mode shrinks it.
ROUNDS = 10
PER_SIDE = 120
RECORDS_PER_ENTITY = 8

#: Chunk LRU capacity (chunks) for the disk arm.
CACHE_CHUNKS = 8
#: The flats must exceed the chunk-cache RAM budget by at least this
#: factor — the "cannot fit in RAM" premise, kept true at any scale by
#: deriving ``chunk_rows`` from the measured in-core footprint.
WORKLOAD_FACTOR = 10

#: Self-contained gate bounds (travel inside the emission).
RESIDENT_RATIO_CEILING = 0.5
RESTORE_SPEEDUP_FLOOR = 1.5


def _config() -> LinkageConfig:
    return LinkageConfig(candidates="temporal", threshold="none")


def _round_records(side: str, round_idx: int, per_side: int) -> List[Record]:
    """One round: ``per_side`` entities, each reporting from
    ``RECORDS_PER_ENTITY`` distinct windows of the round's span."""
    jitter = 0.0 if side == "left" else 1.2e-4
    base_window = round_idx * WINDOWS_PER_ROUND
    records = []
    for i in range(per_side):
        entity = f"e{round_idx}_{i}"
        lat = 37.5 + (i % 25) * 0.004
        lng = -122.4 + (i // 25) * 0.004
        for k in range(RECORDS_PER_ENTITY):
            window = (i * 5 + k * 3 + round_idx) % WINDOWS_PER_ROUND
            records.append(
                Record(
                    entity,
                    lat + jitter + k * 1e-5,
                    lng + jitter + k * 1e-5,
                    (base_window + window) * WIDTH + 30.0 + k,
                )
            )
    return records


def _all_records(rounds: int, per_side: int) -> Dict[str, List[Record]]:
    return {
        side: [
            record
            for round_idx in range(rounds)
            for record in _round_records(side, round_idx, per_side)
        ]
        for side in ("left", "right")
    }


def _replay(linker: StreamingLinker, rounds: int, per_side: int):
    report = None
    for round_idx in range(rounds):
        linker.observe("left", _round_records("left", round_idx, per_side))
        linker.observe("right", _round_records("right", round_idx, per_side))
        report = linker.relink()
    return report


def _flat_rows(linker: StreamingLinker) -> int:
    stats = linker.memory_stats()
    return stats["left_flat_entries"] + stats["right_flat_entries"]


def _resident_bytes(linker: StreamingLinker) -> int:
    stats = linker.memory_stats()
    return (
        stats["left_flat_resident_bytes"] + stats["right_flat_resident_bytes"]
    )


def run_out_of_core_bench(
    results_dir: Path, rounds: int = ROUNDS, per_side: int = PER_SIDE
) -> Tuple[Dict, Dict]:
    """Run both claims; returns ``(payload, parity)``."""
    # In-core reference: footprint baseline + the parity anchor.
    in_core = StreamingLinker(0.0, config=_config())
    reference = _replay(in_core, rounds, per_side)
    in_core_bytes = _resident_bytes(in_core)
    rows = _flat_rows(in_core)

    # Size chunks so the flats are >= WORKLOAD_FACTOR x the cache budget.
    chunk_rows = max(16, rows // (CACHE_CHUNKS * WORKLOAD_FACTOR))
    workload_ratio = rows / (CACHE_CHUNKS * chunk_rows)

    with TemporaryDirectory(prefix="slim-out-of-core-") as scratch:
        scratch_dir = Path(scratch)
        on_disk = StreamingLinker(
            0.0,
            config=_config(),
            storage="disk",
            store_dir=scratch_dir / "store",
            store_chunk_rows=chunk_rows,
            store_cache_chunks=CACHE_CHUNKS,
        )
        disk_report = _replay(on_disk, rounds, per_side)
        disk_resident = _resident_bytes(on_disk)

        links_identical = dict(reference.links) == dict(disk_report.links)
        if reference.link_scores.keys() == disk_report.link_scores.keys():
            max_score_delta = max(
                (
                    abs(
                        reference.link_scores[key]
                        - disk_report.link_scores[key]
                    )
                    for key in reference.link_scores
                ),
                default=0.0,
            )
        else:
            max_score_delta = float("inf")

        # Restart speedup: snapshot the in-core arm, then time how long
        # each path takes to rebuild full linker state — a from-scratch
        # replay (observe everything + relink) vs one snapshot restore.
        snap_dir = scratch_dir / "snaps"
        in_core.save(snap_dir)

        start = time.perf_counter()
        cold = StreamingLinker(0.0, config=_config())
        records = _all_records(rounds, per_side)
        cold.observe("left", records["left"])
        cold.observe("right", records["right"])
        cold.relink()
        cold_seconds = time.perf_counter() - start

        start = time.perf_counter()
        restored = StreamingLinker.restore(snap_dir)
        restore_seconds = time.perf_counter() - start

        # Untimed equivalence drill: both arms take one fresh round and
        # must relink identically — restored state is the replayed state.
        for arm in (cold, restored):
            arm.observe("left", _round_records("left", rounds, per_side))
            arm.observe("right", _round_records("right", rounds, per_side))
        cold_next = cold.relink()
        restored_next = restored.relink()
        restored_identical = (
            dict(restored_next.links) == dict(cold_next.links)
            and restored_next.link_scores == cold_next.link_scores  # repro-lint: disable=float-score-eq -- bit-identity of restored state is the claim under test
        )

    resident_ratio = disk_resident / in_core_bytes if in_core_bytes else 0.0
    payload = {
        "workload": {
            "world": "dense-rounds",
            "rounds": rounds,
            "entities_per_round_per_side": per_side,
            "records_per_entity": RECORDS_PER_ENTITY,
            "flat_rows": rows,
            "chunk_rows": chunk_rows,
            "cache_chunks": CACHE_CHUNKS,
            "flats_over_cache_budget": workload_ratio,
        },
        "in_core_flat_bytes": in_core_bytes,
        "disk_resident_bytes": disk_resident,
        "resident_ratio": resident_ratio,
        "resident_ratio_ceiling": RESIDENT_RATIO_CEILING,
        "cold_replay_s": cold_seconds,
        "restore_s": restore_seconds,
        "restore_speedup_note": "state rebuild: full-stream replay+relink "
        "over snapshot restore",
        "restore_speedup": cold_seconds / restore_seconds,
        "restore_speedup_floor": RESTORE_SPEEDUP_FLOOR,
        "parity": {
            "links_identical": links_identical,
            "restored_links_identical": restored_identical,
            "max_score_delta": max_score_delta,
        },
    }
    write_bench_json("out_of_core", payload, results_dir)
    return payload, payload["parity"]


def test_out_of_core_residency_and_restore(results_dir):
    """CI smoke: the >=10x workload premise holds, residency is under the
    ceiling, restore beats the cold replay, exact parity (JSON emitted)."""
    payload, parity = run_out_of_core_bench(results_dir, rounds=4, per_side=40)
    assert payload["workload"]["flats_over_cache_budget"] >= WORKLOAD_FACTOR
    assert payload["resident_ratio"] <= RESIDENT_RATIO_CEILING, (
        f"disk arm resident at {payload['resident_ratio']:.3f}x of in-core "
        f"(ceiling {RESIDENT_RATIO_CEILING}x)"
    )
    assert payload["restore_speedup"] >= RESTORE_SPEEDUP_FLOOR, (
        f"restore speedup {payload['restore_speedup']:.2f}x under the "
        f"{RESTORE_SPEEDUP_FLOOR}x floor"
    )
    assert parity["links_identical"] and parity["restored_links_identical"]
    assert parity["max_score_delta"] == 0.0


def main(argv: List[str]) -> int:
    smoke = "--smoke" in argv
    rounds = 4 if smoke else ROUNDS
    per_side = 40 if smoke else PER_SIDE
    payload, parity = run_out_of_core_bench(
        RESULTS_DIR, rounds=rounds, per_side=per_side
    )
    workload = payload["workload"]
    print(
        f"out-of-core: {workload['flat_rows']} flat rows at "
        f"{workload['flats_over_cache_budget']:.1f}x the chunk-cache "
        f"budget; resident {payload['disk_resident_bytes']} B vs "
        f"{payload['in_core_flat_bytes']} B in-core "
        f"(ratio {payload['resident_ratio']:.3f}, "
        f"ceiling {payload['resident_ratio_ceiling']})"
    )
    print(
        f"restart: cold replay {payload['cold_replay_s'] * 1000:.1f} ms, "
        f"restore {payload['restore_s'] * 1000:.1f} ms "
        f"-> speedup {payload['restore_speedup']:.1f}x "
        f"(floor {payload['restore_speedup_floor']})"
    )
    if not (parity["links_identical"] and parity["restored_links_identical"]):
        print("FAIL: parity violated", file=sys.stderr)
        return 1
    if payload["resident_ratio"] > payload["resident_ratio_ceiling"]:
        print("FAIL: resident ratio above the ceiling", file=sys.stderr)
        return 1
    if payload["restore_speedup"] < payload["restore_speedup_floor"]:
        print("FAIL: restore speedup under the floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

"""Figure 4: effect of the spatio-temporal level — Cab dataset.

Four surfaces over (spatial level x temporal window width): precision (4a),
recall (4b), alibi entity pairs (4c) and pairwise record comparisons (4d).

Paper shape to reproduce (Sec. 5.2.1):
* precision and recall rise with spatial detail, flattening above ~12;
* very wide windows (>= 180 min) erode precision while recall stays high;
* alibi pairs concentrate at *narrow* windows (small runaway distance);
* comparisons grow with spatial detail and window width.
"""

from bench_util import spatiotemporal_grid

from repro.data import sample_linkage_pair
from repro.eval import format_table, write_report

LEVELS = (4, 8, 12, 16, 20)
WIDTHS = (5, 15, 60, 180, 360)


def test_fig04_cab_grid(benchmark, cab_world, results_dir):
    # A reduced pair keeps the finest grid point tractable in pure Python.
    pair = sample_linkage_pair(
        cab_world.subset(cab_world.entities[:30]),
        intersection_ratio=0.5,
        inclusion_probability=0.5,
        rng=7,
    )

    rows = benchmark.pedantic(
        lambda: spatiotemporal_grid(pair, LEVELS, WIDTHS), rounds=1, iterations=1
    )

    report = format_table(
        rows,
        columns=[
            "window_min",
            "level",
            "precision",
            "recall",
            "f1",
            "alibi_pairs",
            "bin_comparisons",
        ],
        precision=3,
        title="Figure 4: Cab - precision/recall/alibis/comparisons over the spatio-temporal grid",
    )
    write_report(report, results_dir / "fig04_cab_spatiotemporal.txt")

    by_point = {(r["window_min"], r["level"]): r for r in rows}

    # 4a/4b: fine levels beat coarse at the default width.
    assert by_point[(15, 12)]["f1"] >= by_point[(15, 4)]["f1"]
    # 4a: very wide windows erode accuracy at high detail.
    assert by_point[(360, 20)]["f1"] <= by_point[(15, 20)]["f1"] + 1e-9
    # 4c: alibi evidence concentrates at the narrowest window (runaway
    # distance shrinks with the window).
    alibis_narrow = sum(r["alibi_pairs"] for r in rows if r["window_min"] == 5)
    alibis_wide = sum(r["alibi_pairs"] for r in rows if r["window_min"] == 360)
    assert alibis_narrow >= alibis_wide
    # 4d: comparisons grow with spatial detail at fixed width.
    assert (
        by_point[(15, 20)]["bin_comparisons"]
        > by_point[(15, 12)]["bin_comparisons"]
        > by_point[(15, 4)]["bin_comparisons"]
    )

"""Figure 11c/11d: SLIM (with LSH) vs ST-Link across record densities and
intersection ratios — F1, runtime, and pairwise record comparisons.

Paper shape (Sec. 5.5): SLIM outperforms ST-Link's F1 at (almost) every
density; ST-Link's accuracy *decreases* as records grow (alibi/ambiguity
pressure); and SLIM performs orders of magnitude fewer record comparisons
than the sliding-window join the original ST-Link executes (Fig. 11d).

Comparison-count honesty: our ST-Link implementation is itself blocked
behind an inverted index, so the table reports both its actual comparisons
and the sliding-window join cost of the original algorithm (the paper's
cost model) — see EXPERIMENTS.md.
"""

from repro.baselines import StLinkLinker
from repro.core.slim import SlimConfig
from repro.data import sample_linkage_pair
from repro.eval import format_table, precision_recall_f1, run_slim, write_report
from repro.lsh import LshConfig

INCLUSIONS = (0.25, 0.5, 0.8)
RATIOS = (0.3, 0.7)


def _sweep(world):
    rows = []
    for ratio in RATIOS:
        for inclusion in INCLUSIONS:
            pair = sample_linkage_pair(world, ratio, inclusion, rng=7)
            slim = run_slim(
                pair,
                SlimConfig(
                    lsh=LshConfig(threshold=0.3, step_windows=24, spatial_level=14)
                ),
            )
            stlink = StLinkLinker().link(pair.left, pair.right)
            stlink_quality = precision_recall_f1(stlink.links, pair.ground_truth)
            rows.append(
                {
                    "ratio": ratio,
                    "avg_records": round(
                        (pair.left.num_records / pair.left.num_entities
                         + pair.right.num_records / pair.right.num_entities) / 2, 1
                    ),
                    "slim_f1": slim.f1,
                    "stlink_f1": stlink_quality.f1,
                    "slim_comparisons": slim.bin_comparisons,
                    "stlink_comparisons": stlink.record_comparisons,
                    "stlink_window_join": stlink.window_join_comparisons,
                    "slim_runtime_s": slim.runtime_seconds,
                    "stlink_runtime_s": stlink.runtime_seconds,
                }
            )
    return rows


def test_fig11cd_dense_comparison(benchmark, cab_world, results_dir):
    rows = benchmark.pedantic(lambda: _sweep(cab_world), rounds=1, iterations=1)

    write_report(
        format_table(
            rows,
            precision=3,
            title="Figure 11c/11d: SLIM+LSH vs ST-Link across densities and ratios",
        ),
        results_dir / "fig11cd_comparison_dense.txt",
    )

    # 11c: SLIM wins or ties F1 everywhere at paper-comparable densities
    # (>= ~350 records/entity); at the sparsest scale-down points the LSH
    # filter can cost SLIM recall ST-Link does not pay (EXPERIMENTS.md).
    dense_rows = [r for r in rows if r["avg_records"] >= 350]
    assert dense_rows
    losses_dense = sum(
        1 for r in dense_rows if r["slim_f1"] < r["stlink_f1"] - 0.05
    )
    assert losses_dense <= 1  # the paper also concedes one point
    # 11d: SLIM does far fewer comparisons than the original ST-Link's
    # sliding-window join, and the gap *widens* with record density (the
    # paper's three orders of magnitude materialise at its 2,100-18,900
    # records/entity and 24-day span; our scale-down shows the same growth
    # from a smaller base).
    for row in rows:
        assert row["stlink_window_join"] / max(1, row["slim_comparisons"]) > 2.0
    for ratio in RATIOS:
        series = [r for r in rows if r["ratio"] == ratio]
        gaps = [
            r["stlink_window_join"] / max(1, r["slim_comparisons"]) for r in series
        ]
        assert gaps[-1] > gaps[0]

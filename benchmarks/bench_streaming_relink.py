"""Streaming delta-relink benchmark: incremental vs cold full relink.

Replays the sparse check-in workload into a
:class:`~repro.core.streaming.StreamingLinker`, applies a small delta (a
handful of entities report new records), and times the incremental
``relink()`` against a cold linker rebuilding everything from scratch over
the same records.  Exact parity (identical links, scores within 1e-9) is
asserted on every round — the incremental path is only a win if it is
also *right*.

Results land machine-readably in
``benchmarks/results/BENCH_streaming_relink.json`` (see
:func:`bench_util.write_bench_json`), with the headline ``speedup`` entry
the acceptance gate tracks (>= 3x; the LSH workload typically measures an
order of magnitude, because the persistent bucket index re-signatures only
the dirty histories).

Run stand-alone (the CI docs job does):

    PYTHONPATH=src python benchmarks/bench_streaming_relink.py --smoke

or through pytest:

    PYTHONPATH=src python -m pytest -q benchmarks/bench_streaming_relink.py
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Set, Tuple

from bench_util import write_bench_json
from repro.core.slim import SlimConfig
from repro.core.streaming import StreamingLinker
from repro.data import sample_linkage_pair
from repro.data.synth import default_sm_world
from repro.lsh import LshConfig

#: Relative wall-clock floor the incremental relink must clear against a
#: cold relink; relaxed below the observed ~10-20x so shared-runner noise
#: cannot fail a build (the measured value is what the JSON records).
DEFAULT_SPEEDUP_FLOOR = 3.0

#: Entities whose late records form the delta (the "trickle" of updates a
#: streaming deployment sees between two relinks).
MOVED_ENTITIES = 5

RESULTS_DIR = Path(__file__).parent / "results"


def _workload(num_users: int = 300, seed: int = 11):
    """The sparse check-in world, split into an initial bulk load plus a
    small late-records delta for a handful of entities."""
    world = default_sm_world(num_users=num_users, duration_days=8.0, seed=seed)
    pair = sample_linkage_pair(
        world.generate(), intersection_ratio=0.5, inclusion_probability=0.5,
        rng=seed,
    )
    moved: Set[str] = set(pair.left.entities[:MOVED_ENTITIES])
    start = min(pair.left.time_range()[0], pair.right.time_range()[0])
    end = max(pair.left.time_range()[1], pair.right.time_range()[1])
    cut = start + 0.75 * (end - start)
    initial: Dict[str, List] = {"left": [], "right": []}
    delta: Dict[str, List] = {"left": [], "right": []}
    for side, dataset in (("left", pair.left), ("right", pair.right)):
        for record in dataset.records():
            late = record.timestamp > cut and record.entity_id in moved
            (delta if late else initial)[side].append(record)
    return start, initial, delta


def _config() -> SlimConfig:
    """The paper's scalability mode: LSH-filtered candidates."""
    return SlimConfig(
        lsh=LshConfig(threshold=0.3, step_windows=48, spatial_level=14)
    )


def _brute_config() -> SlimConfig:
    """Brute-force candidates: every cross pair is scored, so the relink
    cost is dominated by the score-cache hit path (the workload the
    vectorized ``lookup_batch`` exists for)."""
    return SlimConfig()


def _observe_all(linker: StreamingLinker, batches: Dict[str, List]) -> None:
    for side in ("left", "right"):
        if batches[side]:
            linker.observe(side, batches[side])


def run_streaming_relink_bench(
    results_dir: Path, rounds: int = 3
) -> Tuple[float, Dict]:
    """Time incremental vs cold relinks; returns (speedup, payload).

    Two workloads are measured: the LSH-filtered scalability mode (the
    headline ``speedup``) and a brute-force candidate set, where the
    candidate count is quadratic and nearly every pair is a cache hit —
    the regime the vectorized :class:`~repro.core.score_cache.ScoreCache`
    hit path targets (``brute_force.speedup`` in the JSON).
    """
    origin, initial, delta = _workload()
    config = _config()

    def make_rounds(round_config: SlimConfig):
        def incremental_round() -> StreamingLinker:
            linker = StreamingLinker(origin=origin, config=round_config)
            _observe_all(linker, initial)
            linker.relink()  # warm state the stream has already paid for
            _observe_all(linker, delta)
            return linker

        def cold_round() -> StreamingLinker:
            linker = StreamingLinker(origin=origin, config=round_config)
            _observe_all(
                linker,
                {side: initial[side] + delta[side] for side in ("left", "right")},
            )
            return linker

        return incremental_round, cold_round

    incremental_round, cold_round = make_rounds(config)

    # Parity first: the speedup is meaningless if the links diverge.
    warm = incremental_round()
    incremental_result = warm.relink()
    relink_stats = warm.last_relink
    cold_result = cold_round().relink()
    assert incremental_result.links == cold_result.links, "parity violated"
    cold_scores = {(e.left, e.right): e.weight for e in cold_result.edges}
    incremental_scores = {
        (e.left, e.right): e.weight for e in incremental_result.edges
    }
    assert incremental_scores.keys() == cold_scores.keys(), "edge sets differ"
    max_delta = max(
        (
            abs(weight - incremental_scores[key])
            for key, weight in cold_scores.items()
        ),
        default=0.0,
    )
    assert max_delta <= 1e-9, f"scores drifted by {max_delta}"

    # Timing: each sample gets a fresh pre-delta linker (a second relink
    # of the same linker would be a zero-delta no-op, not a delta relink);
    # linker preparation happens outside the timed region — only the
    # relink() call under measurement is on the clock.
    def time_relinks(make_linker, samples: int) -> Dict[str, float]:
        linkers = [make_linker() for _ in range(samples + 1)]
        linkers[0].relink()  # warmup
        times = []
        for linker in linkers[1:]:
            start = time.perf_counter()
            linker.relink()
            times.append(time.perf_counter() - start)
        return {
            "best_s": min(times),
            "mean_s": sum(times) / len(times),
            "rounds": samples,
        }

    incremental_timing = time_relinks(incremental_round, rounds)
    cold_timing = time_relinks(cold_round, rounds)
    speedup = cold_timing["best_s"] / incremental_timing["best_s"]

    # Brute-force workload: quadratic candidate set, hit-path dominated.
    brute_incremental, brute_cold = make_rounds(_brute_config())
    warm_brute = brute_incremental()
    brute_result = warm_brute.relink()
    brute_cold_result = brute_cold().relink()
    assert brute_result.links == brute_cold_result.links, "brute parity violated"
    brute_stats = warm_brute.last_relink
    brute_incremental_timing = time_relinks(brute_incremental, rounds)
    brute_cold_timing = time_relinks(brute_cold, rounds)
    brute_speedup = (
        brute_cold_timing["best_s"] / brute_incremental_timing["best_s"]
    )

    payload = {
        "workload": {
            "world": "sm-sparse-checkins",
            "num_users": 300,
            "moved_entities": MOVED_ENTITIES,
            "delta_records": len(delta["left"]) + len(delta["right"]),
            "lsh": True,
        },
        "cold_relink": cold_timing,
        "incremental_relink": incremental_timing,
        "speedup": speedup,
        "parity": {
            "links_identical": True,
            "max_score_delta": max_delta,
        },
        "relink_stats": {
            "candidate_pairs": relink_stats.candidate_pairs,
            "pairs_rescored": relink_stats.pairs_rescored,
            "cache_hits": relink_stats.cache_hits,
            "dirty_left": relink_stats.dirty_left,
            "dirty_right": relink_stats.dirty_right,
            "idf_invalidated": relink_stats.idf_invalidated,
            "lsh_rebuilt": relink_stats.lsh_rebuilt,
        },
        "brute_force": {
            "cold_relink": brute_cold_timing,
            "incremental_relink": brute_incremental_timing,
            "speedup": brute_speedup,
            "candidate_pairs": brute_stats.candidate_pairs,
            "cache_hits": brute_stats.cache_hits,
            "pairs_rescored": brute_stats.pairs_rescored,
        },
    }
    write_bench_json("streaming_relink", payload, results_dir)
    return speedup, payload


def test_streaming_relink_speedup(results_dir):
    """CI smoke: the incremental relink must beat a cold relink by the
    configured floor on the streaming workload (and write the JSON)."""
    floor = float(os.environ.get("BENCH_SPEEDUP_FLOOR", DEFAULT_SPEEDUP_FLOOR))
    speedup, payload = run_streaming_relink_bench(results_dir)
    stats = payload["relink_stats"]
    assert stats["pairs_rescored"] < stats["candidate_pairs"]
    assert speedup >= floor, (
        f"incremental relink speedup {speedup:.2f}x below the {floor}x floor"
    )


def main(argv: List[str]) -> int:
    rounds = 2 if "--smoke" in argv else 5
    speedup, payload = run_streaming_relink_bench(RESULTS_DIR, rounds=rounds)
    timing = payload["incremental_relink"]
    print(
        f"incremental relink: best {timing['best_s'] * 1000:.1f} ms, "
        f"cold {payload['cold_relink']['best_s'] * 1000:.1f} ms "
        f"-> {speedup:.1f}x "
        f"({payload['relink_stats']['cache_hits']} cached pairs, "
        f"{payload['relink_stats']['pairs_rescored']} rescored)"
    )
    brute = payload["brute_force"]
    print(
        f"brute-force delta relink: best "
        f"{brute['incremental_relink']['best_s'] * 1000:.1f} ms, cold "
        f"{brute['cold_relink']['best_s'] * 1000:.1f} ms -> "
        f"{brute['speedup']:.1f}x "
        f"({brute['cache_hits']} cached pairs over "
        f"{brute['candidate_pairs']} candidates)"
    )
    floor = float(os.environ.get("BENCH_SPEEDUP_FLOOR", DEFAULT_SPEEDUP_FLOOR))
    if speedup < floor:
        print(f"FAIL: below the {floor}x floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

"""Figure 7: F1 and runtime vs record inclusion probability, for several
entity intersection ratios — Cab (7a, 7b) and SM (7c, 7d).

Paper shape (Sec. 5.2.2):
* Cab: F1 stays near 1 across the whole inclusion sweep (even 10% of a
  dense trace leaves thousands of records per entity); runtime grows
  sub-linearly with record count thanks to history aggregation.
* SM: F1 depends strongly on inclusion — evidence per entity is scarce —
  climbing above 0.9 once entities average >= ~15 records, largely
  independent of the intersection ratio.
"""

from bench_util import average_records

from repro.core.slim import SlimConfig
from repro.data import sample_linkage_pair
from repro.eval import format_table, run_slim, write_report

INCLUSIONS = (0.1, 0.3, 0.5, 0.7, 0.9)
RATIOS = (0.3, 0.5, 0.7, 0.9)


def _sweep(world, rng_base, jitter=0.0, min_records=5):
    rows = []
    for ratio in RATIOS:
        for inclusion in INCLUSIONS:
            pair = sample_linkage_pair(
                world,
                intersection_ratio=ratio,
                inclusion_probability=inclusion,
                rng=rng_base,
                min_records=min_records,
                timestamp_jitter_seconds=jitter,
            )
            measures = run_slim(pair, SlimConfig())
            rows.append(
                {
                    "ratio": ratio,
                    "inclusion": inclusion,
                    "avg_records": round(average_records(pair), 1),
                    "precision": measures.quality.precision,
                    "recall": measures.quality.recall,
                    "f1": measures.f1,
                    "runtime_s": measures.runtime_seconds,
                    "bin_comparisons": measures.bin_comparisons,
                }
            )
    return rows


def test_fig07ab_cab(benchmark, cab_world, results_dir):
    world = cab_world.subset(cab_world.entities[:30])
    rows = benchmark.pedantic(
        lambda: _sweep(world, rng_base=7), rounds=1, iterations=1
    )
    report = format_table(
        rows,
        precision=3,
        title="Figure 7a/7b: Cab - F1 and runtime vs inclusion probability",
    )
    write_report(report, results_dir / "fig07ab_cab.txt")

    # 7a: dense traces keep F1 high across the sweep.  Scale-down caveat
    # (see EXPERIMENTS.md): the paper's inclusion-0.1 point still carries
    # 2,100 records/entity; our 40-taxi world drops to ~77 there, *below*
    # the evidence knee the paper never enters, so the paper-shape
    # assertion applies from the >=0.3 points (>=230 records/entity) up.
    f1_dense = [r["f1"] for r in rows if r["inclusion"] >= 0.5]
    assert min(f1_dense) > 0.85
    f1_mid = [r["f1"] for r in rows if r["inclusion"] == 0.3]
    assert min(f1_mid) > 0.7
    # 7b: the paper's claim is that *runtime* is sub-linear in the average
    # record count — aggregation collapses same-bin records.  Comparisons
    # must at least stay far below the naive quadratic record-pair growth.
    # (Full bin saturation, where comparisons flatten entirely, needs the
    # paper's 2,100-18,900 records/entity densities; see EXPERIMENTS.md.)
    # Wall-clock is reported in the table but not asserted (too noisy under
    # a loaded machine); the deterministic comparison counter carries the
    # sub-quadratic claim.
    for ratio in RATIOS:
        series = [r for r in rows if r["ratio"] == ratio]
        low = next(r for r in series if r["inclusion"] == 0.1)
        high = next(r for r in series if r["inclusion"] == 0.9)
        record_growth = high["avg_records"] / low["avg_records"]
        comparison_growth = high["bin_comparisons"] / max(1, low["bin_comparisons"])
        assert comparison_growth < record_growth**2


def test_fig07cd_sm(benchmark, sm_world, results_dir):
    world = sm_world.subset(sm_world.entities[:400])
    rows = benchmark.pedantic(
        lambda: _sweep(world, rng_base=11, jitter=240.0, min_records=3),
        rounds=1,
        iterations=1,
    )
    report = format_table(
        rows,
        precision=3,
        title="Figure 7c/7d: SM - F1 and runtime vs inclusion probability",
    )
    write_report(report, results_dir / "fig07cd_sm.txt")

    # 7c: sparse data — F1 rises steeply with inclusion...
    for ratio in (0.5, 0.7):
        series = [r for r in rows if r["ratio"] == ratio]
        low = next(r for r in series if r["inclusion"] == 0.1)
        high = next(r for r in series if r["inclusion"] == 0.9)
        assert high["f1"] > low["f1"]
    # ...and is high (>0.9) once entities average >= ~15 records,
    # independent of the intersection ratio (paper Sec. 5.2.2).
    rich = [r for r in rows if r["avg_records"] >= 15]
    assert rich, "sweep should contain points with >= 15 records/entity"
    assert min(r["f1"] for r in rich) > 0.8

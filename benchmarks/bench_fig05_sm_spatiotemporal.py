"""Figure 5: effect of the spatio-temporal level — SM dataset.

Same four surfaces as Fig. 4 on the sparse check-in world.  Paper shape
(Sec. 5.2.1): the observations of Fig. 4 carry over, except the best recall
needs wider windows than Cab (15 min rather than 5 — very small windows
require services to be used synchronously) and the alibi surface is flatter
(lower spatio-temporal skew).
"""

from bench_util import spatiotemporal_grid

from repro.data import sample_linkage_pair
from repro.eval import format_table, write_report

LEVELS = (4, 8, 12, 16, 20)
WIDTHS = (5, 15, 60, 180, 360)


def test_fig05_sm_grid(benchmark, sm_world, results_dir):
    # 4-minute per-side timestamp jitter: two services log the same event
    # at slightly different instants (the source of the paper's asynchrony).
    pair = sample_linkage_pair(
        sm_world.subset(sm_world.entities[:400]),
        intersection_ratio=0.5,
        inclusion_probability=0.5,
        rng=11,
        timestamp_jitter_seconds=240.0,
    )

    rows = benchmark.pedantic(
        lambda: spatiotemporal_grid(pair, LEVELS, WIDTHS), rounds=1, iterations=1
    )

    report = format_table(
        rows,
        columns=[
            "window_min",
            "level",
            "precision",
            "recall",
            "f1",
            "alibi_pairs",
            "bin_comparisons",
        ],
        precision=3,
        title="Figure 5: SM - precision/recall/alibis/comparisons over the spatio-temporal grid",
    )
    write_report(report, results_dir / "fig05_sm_spatiotemporal.txt")

    by_point = {(r["window_min"], r["level"]): r for r in rows}

    # Fine detail beats coarse at the default width.
    assert by_point[(15, 12)]["f1"] >= by_point[(15, 4)]["f1"]
    # Best recall at 15-minute windows, not 5 (asynchronous services):
    recall_5 = max(r["recall"] for r in rows if r["window_min"] == 5)
    recall_15 = max(r["recall"] for r in rows if r["window_min"] == 15)
    assert recall_15 >= recall_5
    # Comparisons grow with spatial detail.
    assert (
        by_point[(15, 20)]["bin_comparisons"] >= by_point[(15, 8)]["bin_comparisons"]
    )

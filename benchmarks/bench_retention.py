"""Retention benchmark: bounded-memory streaming vs the unbounded baseline.

Replays a *rolling* workload — every round a fresh cohort of entities
reports a handful of records and old cohorts go quiet, the shape of a
real feed where users come and go — into two :class:`StreamingLinker`\\ s:

* **retention**: ``retention="sliding_window"`` keeps two rounds of
  activity; each relink retires the cohorts that fell out of the window,
  so corpus flats, df slots, LSH placements and score-cache rows all
  track the *live* working set;
* **baseline**: ``retention="none"`` (the pre-retention behaviour) keeps
  every entity ever observed — memory and relink latency grow with the
  stream's lifetime instead of its window.

Both use ``candidates="temporal"`` (cohorts never share windows across
rounds, so the candidate set is the honest per-window one) and exact
relinks (``idf_tolerance=0.0``).  Eviction parity is asserted before
anything is timed: the final retention relink must be bit-identical to a
cold run over the surviving entities.

Results land in ``benchmarks/results/BENCH_retention.json``: per-round
memory/latency series for both arms, the steady-state bound
(``memory_bound_ratio`` = flat entries / live entries, eager compaction
keeps it at 1.0), and the headline ``speedup`` (final baseline relink
over final retention relink).

Run stand-alone (the CI docs job does):

    PYTHONPATH=src python benchmarks/bench_retention.py --smoke

or through pytest:

    PYTHONPATH=src python -m pytest -q benchmarks/bench_retention.py
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Tuple

from bench_util import write_bench_json
from repro.core.streaming import StreamingLinker
from repro.data import Record
from repro.pipeline import LinkageConfig

RESULTS_DIR = Path(__file__).parent / "results"

#: Leaf window width (seconds) and windows spanned by one round.
WIDTH = 900.0
WINDOWS_PER_ROUND = 16

#: Full-scale workload: ROUNDS cohorts of PER_SIDE entities per side =
#: 10k entities streamed end to end.  Smoke mode shrinks both.
ROUNDS = 50
PER_SIDE = 100

#: Sliding-window age: two rounds of activity stay live.
RETENTION_WINDOWS = 2 * WINDOWS_PER_ROUND

#: The unbounded baseline relinks every this-many rounds (its relinks get
#: progressively more expensive — that growth is the point — so a sparser
#: cadence keeps the bench runnable while still tracing the trend).
BASELINE_CADENCE = 5

#: Steady-state bound the acceptance gate checks: allocated flat entries
#: may exceed the live-entity footprint by at most this factor.
MEMORY_BOUND = 1.2


def _round_records(side: str, round_idx: int, per_side: int) -> List[Record]:
    """One cohort's records: ``per_side`` fresh entities, each active in
    two pseudo-random windows of the round's span."""
    jitter = 0.0 if side == "left" else 1.2e-4
    base_window = round_idx * WINDOWS_PER_ROUND
    records = []
    for i in range(per_side):
        entity = f"e{round_idx}_{i}"
        lat = 37.5 + (i % 25) * 0.004
        lng = -122.4 + (i // 25) * 0.004
        for window in ((i * 5 + round_idx) % WINDOWS_PER_ROUND,
                       (i * 11 + 3) % WINDOWS_PER_ROUND):
            records.append(
                Record(
                    entity,
                    lat + jitter,
                    lng + jitter,
                    (base_window + window) * WIDTH + 30.0,
                )
            )
    return records


def _config(retention: bool) -> LinkageConfig:
    return LinkageConfig(
        candidates="temporal",
        threshold="none",
        retention="sliding_window" if retention else "none",
        retention_window=RETENTION_WINDOWS if retention else 0,
    )


def _memory_snapshot(linker: StreamingLinker, round_idx: int,
                     seconds: float) -> Dict[str, float]:
    stats = linker.memory_stats()
    relink = linker.last_relink
    return {
        "round": round_idx,
        "entities": stats["left_entities"] + stats["right_entities"],
        "flat_entries": stats["left_flat_entries"] + stats["right_flat_entries"],
        "flat_live": stats["left_flat_live"] + stats["right_flat_live"],
        "df_slots": stats["left_df_slots"] + stats["right_df_slots"],
        "score_cache_rows": stats["score_cache_rows"],
        "evicted": relink.evicted_left + relink.evicted_right,
        "candidate_pairs": relink.candidate_pairs,
        "relink_s": seconds,
    }


def _stream(rounds: int, per_side: int, retention: bool,
            cadence: int) -> Tuple[StreamingLinker, Dict, List[Dict]]:
    """Feed the rolling workload, relinking on ``cadence``; returns the
    linker, all observed records per side, and the per-relink series."""
    linker = StreamingLinker(origin=0.0, config=_config(retention))
    observed: Dict[str, List[Record]] = {"left": [], "right": []}
    series: List[Dict[str, float]] = []
    for round_idx in range(rounds):
        for side in ("left", "right"):
            batch = _round_records(side, round_idx, per_side)
            observed[side].extend(batch)
            linker.observe(side, batch)
        if (round_idx + 1) % cadence == 0 or round_idx == rounds - 1:
            start = time.perf_counter()
            linker.relink()
            series.append(
                _memory_snapshot(linker, round_idx,
                                 time.perf_counter() - start)
            )
    return linker, observed, series


def _assert_cold_parity(linker: StreamingLinker, observed: Dict,
                        retention: bool) -> float:
    """Final relink vs a cold linker fed only the survivors' records;
    returns the max absolute score delta (must be exactly 0.0)."""
    final = linker.relink()
    cold = StreamingLinker(origin=0.0, config=_config(retention))
    for side in ("left", "right"):
        survivors = set(linker._sides[side])
        cold.observe(
            side, [r for r in observed[side] if r.entity_id in survivors]
        )
    cold_result = cold.relink()
    assert final.links == cold_result.links, "eviction parity violated"
    cold_scores = {(e.left, e.right): e.weight for e in cold_result.edges}
    scores = {(e.left, e.right): e.weight for e in final.edges}
    assert scores.keys() == cold_scores.keys(), "edge sets differ"
    return max(
        (abs(cold_scores[key] - scores[key]) for key in cold_scores),
        default=0.0,
    )


def run_retention_bench(
    results_dir: Path, rounds: int = ROUNDS, per_side: int = PER_SIDE,
    cadence: int = BASELINE_CADENCE,
) -> Tuple[float, Dict]:
    """Run both arms; returns (memory_bound_ratio, payload)."""
    bounded, observed, bounded_series = _stream(
        rounds, per_side, retention=True, cadence=1
    )
    max_delta = _assert_cold_parity(bounded, observed, retention=True)

    baseline, _, baseline_series = _stream(
        rounds, per_side, retention=False, cadence=cadence
    )

    final = bounded_series[-1]
    ratio = (
        final["flat_entries"] / final["flat_live"]
        if final["flat_live"]
        else float("inf")
    )
    flats = [row["flat_entries"] for row in baseline_series]
    assert flats == sorted(flats), "baseline memory should only grow"

    payload = {
        "workload": {
            "world": "rolling-cohorts",
            "rounds": rounds,
            "entities_per_round_per_side": per_side,
            "total_entities": 2 * rounds * per_side,
            "windows_per_round": WINDOWS_PER_ROUND,
            "retention_windows": RETENTION_WINDOWS,
            "baseline_relink_cadence_rounds": cadence,
        },
        "retention": {
            "policy": "sliding_window",
            "series": bounded_series,
            "steady_state": final,
        },
        "baseline": {
            "policy": "none",
            "series": baseline_series,
            "final": baseline_series[-1],
        },
        "memory_bound_ratio": ratio,
        "memory_vs_baseline": (
            baseline_series[-1]["flat_entries"] / max(1, final["flat_entries"])
        ),
        "speedup": (
            baseline_series[-1]["relink_s"] / bounded_series[-1]["relink_s"]
        ),
        "parity": {
            "links_identical": True,
            "max_score_delta": max_delta,
        },
    }
    write_bench_json("retention", payload, results_dir)
    return ratio, payload


def test_retention_bounded_memory(results_dir):
    """CI smoke: steady-state memory bounded below 1.2x the live-entity
    footprint, unbounded baseline strictly larger, exact eviction parity
    (and the JSON emitted)."""
    ratio, payload = run_retention_bench(
        results_dir, rounds=6, per_side=30, cadence=2
    )
    assert ratio <= MEMORY_BOUND, (
        f"flat entries at {ratio:.2f}x the live footprint "
        f"(bound {MEMORY_BOUND}x)"
    )
    assert payload["parity"]["max_score_delta"] == 0.0
    assert payload["memory_vs_baseline"] >= 2.0, (
        "the unbounded baseline should dwarf the retention arm"
    )


def main(argv: List[str]) -> int:
    smoke = "--smoke" in argv
    rounds = 6 if smoke else ROUNDS
    per_side = 30 if smoke else PER_SIDE
    cadence = 2 if smoke else BASELINE_CADENCE
    ratio, payload = run_retention_bench(
        RESULTS_DIR, rounds=rounds, per_side=per_side, cadence=cadence
    )
    final = payload["retention"]["steady_state"]
    base = payload["baseline"]["final"]
    print(
        f"retention: {final['entities']} live entities, "
        f"{final['flat_entries']} flat entries "
        f"({ratio:.2f}x live footprint), relink {final['relink_s'] * 1000:.1f} ms"
    )
    print(
        f"baseline:  {base['entities']} entities, "
        f"{base['flat_entries']} flat entries "
        f"({payload['memory_vs_baseline']:.1f}x retention), "
        f"relink {base['relink_s'] * 1000:.1f} ms "
        f"-> speedup {payload['speedup']:.1f}x"
    )
    floor = float(os.environ.get("BENCH_MEMORY_BOUND", MEMORY_BOUND))
    if ratio > floor:
        print(f"FAIL: memory ratio {ratio:.2f} above {floor}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

"""Figure 8: LSH quality and speed-up vs (signature spatial level x
temporal step size) — Cab (8a, 8b) and SM (8c, 8d).

The LSH knobs here are *signature* parameters, independent of the
similarity configuration (which stays at the defaults).  Paper shape
(Sec. 5.3.1):
* at coarse signature levels every entity shares the same dominating cells,
  so nothing is pruned: relative F1 ~ 1 and speed-up ~ 1 (especially Cab,
  which is "spatially too dense");
* finer levels prune aggressively: orders-of-magnitude fewer comparisons at
  a modest relative-F1 cost;
* the SM world (more entities, lower skew) reaches much larger speed-ups
  than Cab at the same settings.
"""

from repro.core.slim import SlimConfig
from repro.data import sample_linkage_pair
from repro.eval import format_table, relative_f1, run_slim, speedup, write_report
from repro.lsh import LshConfig

LEVELS = (8, 12, 14, 16)
STEPS = (8, 16, 48, 96)
THRESHOLD = 0.6
BUCKETS = 4096


def _sweep(pair, brute):
    rows = []
    for level in LEVELS:
        for step in STEPS:
            config = SlimConfig(
                lsh=LshConfig(
                    threshold=THRESHOLD,
                    step_windows=step,
                    spatial_level=level,
                    num_buckets=BUCKETS,
                )
            )
            measures = run_slim(pair, config)
            rows.append(
                {
                    "sig_level": level,
                    "step_windows": step,
                    "relative_f1": relative_f1(measures.f1, brute.f1),
                    "speedup": speedup(
                        brute.bin_comparisons, measures.bin_comparisons
                    ),
                    "candidates": measures.result.candidate_pairs,
                    "f1": measures.f1,
                }
            )
    return rows


def _report(rows, brute, title, path):
    lines = [
        f"brute force: F1={brute.f1:.3f}, "
        f"comparisons={brute.bin_comparisons}, "
        f"candidates={brute.result.candidate_pairs}",
        "",
        format_table(rows, precision=3, title=title),
    ]
    write_report("\n".join(lines), path)


def test_fig08ab_cab(benchmark, cab_world, results_dir):
    pair = sample_linkage_pair(
        cab_world.subset(cab_world.entities[:30]), 0.5, 0.5, rng=7
    )
    brute = run_slim(pair, SlimConfig())

    rows = benchmark.pedantic(lambda: _sweep(pair, brute), rounds=1, iterations=1)
    _report(
        rows,
        brute,
        "Figure 8a/8b: Cab - LSH relative F1 and speed-up",
        results_dir / "fig08ab_cab.txt",
    )

    by_point = {(r["sig_level"], r["step_windows"]): r for r in rows}
    # Coarse signatures on the dense city prune little (paper: "the Cab
    # dataset is spatially too dense ... no speed-up for these points").
    assert by_point[(8, 16)]["speedup"] < by_point[(16, 16)]["speedup"]
    assert by_point[(8, 16)]["relative_f1"] > 0.99
    # Somewhere on the grid, LSH prunes substantially while preserving most
    # of the F1 (the paper's level-16/step-48 sweet spot; at our 1.5-day
    # scale-down the equivalent point sits at smaller steps because the
    # signature has ~10x fewer slots — see EXPERIMENTS.md).
    good = [r for r in rows if r["relative_f1"] >= 0.85 and r["speedup"] >= 4.0]
    assert good, "expected a high-F1 / high-speed-up grid point"


def test_fig08cd_sm(benchmark, sm_world, results_dir):
    pair = sample_linkage_pair(
        sm_world, 0.5, 0.5, rng=11, timestamp_jitter_seconds=240.0
    )
    brute = run_slim(pair, SlimConfig())

    rows = benchmark.pedantic(lambda: _sweep(pair, brute), rounds=1, iterations=1)
    _report(
        rows,
        brute,
        "Figure 8c/8d: SM - LSH relative F1 and speed-up",
        results_dir / "fig08cd_sm.txt",
    )

    by_point = {(r["sig_level"], r["step_windows"]): r for r in rows}
    # The speed-up take-off starts earlier and is steeper than Cab
    # (lower geographic skew): compare the same grid point.
    assert by_point[(14, 16)]["speedup"] > 5.0
    assert by_point[(14, 16)]["relative_f1"] > 0.5
    # More entities -> larger attainable speed-up than the Cab world.
    best_sm = max(r["speedup"] for r in rows)
    assert best_sm > 20.0

"""Figure 11a/11b: SLIM vs ST-Link vs GM as evidence grows — hit
precision@40, F1 and runtime over average records per entity.

The paper samples datasets averaging 20..660 records per entity from a
675-record pivot and reports: all methods eventually reach (near-)perfect
hit precision@40; F1 separates them — SLIM reaches ~0.3 F1 already at 20
records while ST-Link and GM sit near 0.05, and SLIM stays best at 660
(0.92 vs 0.87 / 0.73); GM is orders of magnitude slower (it is therefore
run on the sparser points only, as the paper restricted GM to a one-week
subset for the same reason).
"""

from repro.baselines import GmLinker, StLinkLinker
from repro.core.slim import SlimConfig
from repro.data import sample_linkage_pair
from repro.data.synth import default_cab_world
from repro.eval import (
    format_table,
    hit_precision_at_k,
    precision_recall_f1,
    run_slim,
    score_all_pairs,
    write_report,
)
from repro.lsh import LshConfig

TARGET_RECORDS = (20, 40, 80, 165, 330, 660)
GM_MAX_RECORDS = 165  # GM has no scaling mechanism; see module docstring.


def _sparse_world():
    return default_cab_world(
        num_taxis=100, duration_days=1.0, sample_period_seconds=120, seed=17
    ).generate()


def _sweep(world):
    full_avg = world.num_records / world.num_entities
    rows = []
    for target in TARGET_RECORDS:
        inclusion = min(1.0, target / full_avg)
        pair = sample_linkage_pair(
            world, 0.5, inclusion, rng=17, min_records=5
        )

        slim = run_slim(pair, SlimConfig())
        scores, _ = score_all_pairs(pair)
        slim_hit = hit_precision_at_k(scores, pair.ground_truth, 40)

        lsh = run_slim(
            pair,
            SlimConfig(
                lsh=LshConfig(threshold=0.3, step_windows=16, spatial_level=14)
            ),
        )

        stlink = StLinkLinker().link(pair.left, pair.right)
        stlink_quality = precision_recall_f1(stlink.links, pair.ground_truth)
        stlink_hit = hit_precision_at_k(stlink.scores, pair.ground_truth, 40)

        row = {
            "avg_records": round(
                (pair.left.num_records / pair.left.num_entities
                 + pair.right.num_records / pair.right.num_entities) / 2, 1
            ),
            "slim_hit40": slim_hit,
            "stlink_hit40": stlink_hit,
            "slim_f1": slim.f1,
            "slim_lsh_f1": lsh.f1,
            "stlink_f1": stlink_quality.f1,
            "slim_runtime_s": slim.runtime_seconds,
            "stlink_runtime_s": stlink.runtime_seconds,
        }
        if target <= GM_MAX_RECORDS:
            gm = GmLinker().link(pair.left, pair.right)
            gm_quality = precision_recall_f1(gm.links, pair.ground_truth)
            row["gm_hit40"] = hit_precision_at_k(gm.scores, pair.ground_truth, 40)
            row["gm_f1"] = gm_quality.f1
            row["gm_runtime_s"] = gm.runtime_seconds
        rows.append(row)
    return rows


def test_fig11ab_sparse_comparison(benchmark, results_dir):
    world = _sparse_world()
    rows = benchmark.pedantic(lambda: _sweep(world), rounds=1, iterations=1)

    write_report(
        format_table(
            rows,
            precision=3,
            title="Figure 11a/11b: hit precision@40, F1 and runtime vs avg records",
        ),
        results_dir / "fig11ab_comparison_sparse.txt",
    )

    first, last = rows[0], rows[-1]

    # 11a: hit precision rises with records; SLIM (near-)tops the ranking
    # metric at the dense end.
    assert last["slim_hit40"] >= 0.9
    assert last["slim_hit40"] >= first["slim_hit40"] - 1e-9
    # 11b: SLIM's F1 grows monotonically-ish with evidence and dominates
    # the dense end (paper: 0.92 vs 0.87 ST-Link / 0.73 GM), with LSH-SLIM
    # close behind (paper: 0.89).
    #
    # Scale-down divergence (documented in EXPERIMENTS.md): at the 20-record
    # sparse end the paper reports SLIM ~0.3 vs ~0.05 for both baselines; in
    # our synthetic city exact-cell co-occurrence stays discriminative at 20
    # records, so ST-Link and especially GM hold up better than on the real
    # SF trace, and SLIM's sparse-end advantage does not reproduce.
    assert last["slim_f1"] >= last["stlink_f1"] - 0.05
    assert last["slim_f1"] >= 0.9
    assert last["slim_lsh_f1"] >= last["slim_f1"] - 0.25
    assert last["slim_f1"] >= first["slim_f1"]
    # GM is the slowest method where it ran (paper: two orders slower) and
    # its cost grows fastest with record count.
    gm_rows = [r for r in rows if "gm_runtime_s" in r]
    assert gm_rows
    assert gm_rows[-1]["gm_runtime_s"] > gm_rows[-1]["stlink_runtime_s"]
    assert gm_rows[-1]["gm_runtime_s"] > gm_rows[0]["gm_runtime_s"]

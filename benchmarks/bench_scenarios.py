"""Scenario-matrix benchmark: adversarial robustness with quality floors.

Fans the scenario zoo (:mod:`repro.scenarios`) out against the exact
pipeline and the LSH-filtered pipeline via
:func:`repro.eval.harness.run_scenarios` — one ground-truthed pair per
scenario (GPS jitter bursts, device swaps, population drift, bursty
arrival, dropout gaps, duplicate ingestion, plus two clean controls),
scored against held-out truth.  The result is a per-scenario
quality-vs-speed frontier: the exact arm's F1 next to the LSH arm's F1
and cost columns.

Results land in ``benchmarks/results/BENCH_scenarios.json``.  Every
exact-arm row carries an ``f1_floor`` alongside its measured ``f1`` —
``tools/check_bench_regression.py`` enforces ``f1 >= f1_floor`` on the
emission itself (at any workload scale, on any runner) and additionally
compares ``f1`` against the committed baseline on identical workloads.
The ``parity`` block pins the executor matrix: quality under the
environment-selected backend (``REPRO_EXECUTOR``) must be bit-identical
to a serial run.

Run stand-alone (the CI scenario-matrix job does, across executors):

    PYTHONPATH=src python benchmarks/bench_scenarios.py --smoke

or through pytest:

    PYTHONPATH=src python -m pytest -q benchmarks/bench_scenarios.py
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, List, Tuple

from bench_util import write_bench_json
from repro.eval import run_scenarios, scenario_table
from repro.eval.harness import ScenarioCell
from repro.lsh.index import LshConfig
from repro.pipeline import LinkageConfig
from repro.scenarios import scenario_names

RESULTS_DIR = Path(__file__).parent / "results"

#: Scenario seed: floors below were measured at this seed.
SEED = 7

#: Full-scale and smoke workload sizes (world-size multipliers).
SCALE = 1.0
SMOKE_SCALE = 0.5

#: Per-scenario F1 floors for the exact pipeline, valid at both scales
#: (set with margin under the weaker of the two measured values; the
#: tighter identical-workload baseline comparison catches smaller dips).
#: A scenario missing here (e.g. a newly registered one) gets no floor
#: until a maintainer measures it.
F1_FLOORS: Dict[str, float] = {
    "baseline_cab": 0.45,
    "bursty_arrival": 0.30,
    "checkin_baseline": 0.85,
    "device_swap": 0.35,
    "dropout_gaps": 0.45,
    "duplicate_ingestion": 0.45,
    "gps_jitter_burst": 0.40,
    "population_drift": 0.25,
}

#: The matrix's configuration arms: exact scoring vs LSH-filtered.
CONFIGS = {
    "exact": LinkageConfig(),
    "lsh": LinkageConfig(lsh=LshConfig()),
}


def _cell_rows(cells: List[ScenarioCell]) -> List[Dict[str, object]]:
    rows = []
    for cell in cells:
        row = cell.row()
        if cell.config_label == "exact" and cell.scenario in F1_FLOORS:
            row["f1_floor"] = F1_FLOORS[cell.scenario]
        rows.append(row)
    return rows


def _quality_key(rows: List[Dict[str, object]]) -> List[Tuple]:
    """The workload-deterministic part of the matrix (no runtimes)."""
    return [
        tuple(row[k] for k in ("scenario", "config", "precision", "recall", "f1"))
        for row in rows
    ]


def run_scenario_bench(
    results_dir: Path, scale: float = SCALE, seed: int = SEED
) -> Dict:
    """Run the matrix under the environment's executor, verify serial
    parity, emit the JSON; returns the payload."""
    names = scenario_names()
    cells = run_scenarios(names, CONFIGS, seed=seed, scale=scale, executor="auto")
    serial = run_scenarios(names, CONFIGS, seed=seed, scale=scale, executor=None)

    rows = _cell_rows(cells)
    serial_rows = _cell_rows(serial)
    identical = _quality_key(rows) == _quality_key(serial_rows)
    max_f1_delta = max(
        abs(float(a["f1"]) - float(b["f1"]))
        for a, b in zip(rows, serial_rows)
    )

    payload = {
        "workload": {
            "seed": seed,
            "scale": scale,
            "scenarios": names,
            "configs": sorted(CONFIGS),
        },
        "scenarios": rows,
        "parity": {
            "quality_identical": identical,
            "max_f1_delta": max_f1_delta,
        },
    }
    write_bench_json("scenarios", payload, results_dir)
    return payload


def test_scenario_matrix_floors(results_dir):
    """CI smoke: every floored scenario clears its F1 floor, the matrix is
    complete, and executor parity holds (and the JSON emitted)."""
    payload = run_scenario_bench(results_dir, scale=SMOKE_SCALE)
    rows = payload["scenarios"]
    assert len(rows) == len(scenario_names()) * len(CONFIGS)
    assert payload["parity"]["quality_identical"]
    assert payload["parity"]["max_f1_delta"] == 0.0
    floored = {
        row["scenario"]: (row["f1"], row["f1_floor"])
        for row in rows
        if "f1_floor" in row
    }
    assert set(floored) == set(F1_FLOORS)
    for scenario, (f1, floor) in floored.items():
        assert f1 >= floor, f"{scenario}: f1 {f1:.3f} below floor {floor}"


def main(argv: List[str]) -> int:
    scale = SMOKE_SCALE if "--smoke" in argv else SCALE
    payload = run_scenario_bench(RESULTS_DIR, scale=scale)
    print(
        scenario_table(
            payload["scenarios"],
            title=f"scenario matrix (seed {SEED}, scale {scale})",
        )
    )
    parity = payload["parity"]
    print(
        f"executor parity: quality_identical={parity['quality_identical']} "
        f"max_f1_delta={parity['max_f1_delta']:.1e}"
    )
    failures = [
        f"{row['scenario']}: f1 {row['f1']:.3f} below floor {row['f1_floor']:.2f}"
        for row in payload["scenarios"]
        if "f1_floor" in row and row["f1"] < row["f1_floor"]
    ]
    if not parity["quality_identical"]:
        failures.append("executor parity violated")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

"""Serving benchmark: sustained ingest, query latency, snapshot staleness.

Replays the ``bursty_arrival`` scenario — the adversarial stream whose
records cluster into rush-hour spikes — through the online serving layer
(:class:`repro.serve.LinkageService`): each round's records are submitted,
the round is flushed to a fresh snapshot, and a deterministic query load
runs against the published snapshot.  The per-round serving counters
(:func:`repro.eval.reporting.serving_table`) are the paper-side figure;
the JSON summary carries the headline serving numbers:

* ``ingest_rate`` — sustained accepted records/second over the replay,
  next to a self-contained ``ingest_rate_floor`` the gate enforces on any
  runner at any scale;
* ``query_p99_s`` — 99th-percentile snapshot-query latency, next to its
  ``query_p99_s_ceiling`` (reads are reference-chasing on an immutable
  snapshot — if this ever nears a relink's runtime, the readers-never-
  block-writers story broke);
* ``staleness_s`` — the final snapshot's event-time lag behind the
  stream's watermark (0 after a flushed replay: every accepted record is
  in the published snapshot).

The ``parity`` block re-links the same events offline through a bare
:class:`~repro.core.streaming.StreamingLinker` and pins bit-identical
links (``links_identical``, ``max_score_delta``) — the serving layer adds
scheduling, never answers.

Results land in ``benchmarks/results/BENCH_serving.json``;
``tools/check_bench_regression.py`` enforces the floor/ceiling bounds and
the parity flags.

Run stand-alone (the CI serving job does, across executors):

    PYTHONPATH=src python benchmarks/bench_serving.py --smoke

or through pytest:

    PYTHONPATH=src python -m pytest -q benchmarks/bench_serving.py
"""

from __future__ import annotations

import asyncio
import sys
from pathlib import Path
from typing import Dict, List

from bench_util import write_bench_json
from repro.core.streaming import StreamingLinker
from repro.eval.reporting import serving_table
from repro.pipeline import LinkageConfig
from repro.scenarios import get_scenario
from repro.serve import LinkageService, replay_rounds
from repro.serve.replay import replay_origin

RESULTS_DIR = Path(__file__).parent / "results"

#: Scenario seed: the bounds below were measured at this seed.
SEED = 7

#: Full-scale and smoke workload sizes (world-size multipliers).
SCALE = 1.0
SMOKE_SCALE = 0.4

ROUNDS = 6
QUERIES_PER_ROUND = 200

#: Self-contained serving bounds, valid at both scales (set with wide
#: margin under/over the measured values — the gate's baseline comparison
#: is the tight check; these catch collapses, not wiggle).  Measured on a
#: dev container: ingest ~2e4 rec/s smoke / ~1e4 full; query p99 ~2e-5 s.
INGEST_RATE_FLOOR = 200.0  # records/second
QUERY_P99_CEILING = 0.05  # seconds


def _offline_links(rounds, config: LinkageConfig):
    """The parity oracle: same events, bare linker, one final relink."""
    linker = StreamingLinker(origin=replay_origin(rounds), config=config)
    for cell in rounds:
        linker.observe("left", cell.left)
        linker.observe("right", cell.right)
    return linker.relink()


def run_serving_bench(
    results_dir: Path, scale: float = SCALE, seed: int = SEED
) -> Dict:
    """Replay the bursty stream through a service, verify offline parity,
    emit the JSON; returns the payload."""
    scenario = get_scenario("bursty_arrival")
    rounds = scenario.stream(seed=seed, scale=scale, rounds=ROUNDS)
    config = LinkageConfig(executor="auto")

    async def serve():
        service = LinkageService(replay_origin(rounds), config)
        async with service:
            result = await replay_rounds(
                service, rounds, queries_per_round=QUERIES_PER_ROUND
            )
            return result, service.metrics()

    result, metrics = asyncio.run(serve())
    offline = _offline_links(rounds, config)

    served_scores = dict(result.snapshot.link_scores)
    links_identical = dict(result.snapshot.links) == offline.links
    shared = set(served_scores) & set(offline.link_scores)
    max_score_delta = max(
        (
            abs(served_scores[pair] - offline.link_scores[pair])
            for pair in shared
        ),
        default=0.0,
    )
    if set(served_scores) != set(offline.link_scores):
        max_score_delta = float("inf")

    payload = {
        "workload": {
            "scenario": "bursty_arrival",
            "seed": seed,
            "scale": scale,
            "rounds": ROUNDS,
            "queries_per_round": QUERIES_PER_ROUND,
        },
        "serving": {
            "ingest_rate": metrics["ingest_rate"],
            "ingest_rate_floor": INGEST_RATE_FLOOR,
            "query_p99_s": metrics["query_p99_ms"] / 1e3,
            "query_p99_s_ceiling": QUERY_P99_CEILING,
            "query_p50_s": metrics["query_p50_ms"] / 1e3,
            "relink_p50_s": metrics["relink_p50_s"],
            "relink_p99_s": metrics["relink_p99_s"],
            "staleness_s": metrics["staleness_s"],
            "records_in": metrics["records_in"],
            "relinks": metrics["relinks"],
            "relink_failures": metrics["relink_failures"],
            "snapshot_version": metrics["snapshot_version"],
            "queries": metrics["queries"],
        },
        "rounds": result.samples,
        "parity": {
            "links_identical": links_identical,
            "max_score_delta": max_score_delta,
        },
    }
    write_bench_json("serving", payload, results_dir)
    return payload


def test_serving_smoke(results_dir):
    """CI smoke: the serving bounds hold, the replay flushed everything
    (zero final staleness, one snapshot per round), and the served links
    are bit-identical to the offline oracle (and the JSON emitted)."""
    payload = run_serving_bench(results_dir, scale=SMOKE_SCALE)
    serving = payload["serving"]
    assert payload["parity"]["links_identical"]
    assert payload["parity"]["max_score_delta"] == 0.0
    assert serving["ingest_rate"] >= serving["ingest_rate_floor"]
    assert serving["query_p99_s"] <= serving["query_p99_s_ceiling"]
    assert serving["staleness_s"] == 0.0
    assert serving["relink_failures"] == 0
    assert serving["snapshot_version"] == ROUNDS
    assert serving["queries"] == ROUNDS * QUERIES_PER_ROUND
    assert len(payload["rounds"]) == ROUNDS


def main(argv: List[str]) -> int:
    scale = SMOKE_SCALE if "--smoke" in argv else SCALE
    payload = run_serving_bench(RESULTS_DIR, scale=scale)
    print(
        serving_table(
            payload["rounds"],
            title=f"serving counters (bursty_arrival, seed {SEED}, "
            f"scale {scale})",
        )
    )
    serving = payload["serving"]
    parity = payload["parity"]
    print(
        f"ingest {serving['ingest_rate']:.0f} rec/s "
        f"(floor {serving['ingest_rate_floor']:.0f}); "
        f"query p99 {serving['query_p99_s'] * 1e3:.3f} ms "
        f"(ceiling {serving['query_p99_s_ceiling'] * 1e3:.0f} ms); "
        f"staleness {serving['staleness_s']:.1f} s"
    )
    print(
        f"offline parity: links_identical={parity['links_identical']} "
        f"max_score_delta={parity['max_score_delta']:.1e}"
    )
    failures = []
    if serving["ingest_rate"] < serving["ingest_rate_floor"]:
        failures.append(
            f"ingest_rate {serving['ingest_rate']:.0f} below floor "
            f"{serving['ingest_rate_floor']:.0f}"
        )
    if serving["query_p99_s"] > serving["query_p99_s_ceiling"]:
        failures.append(
            f"query_p99_s {serving['query_p99_s']:.4f} above ceiling "
            f"{serving['query_p99_s_ceiling']:.4f}"
        )
    if not parity["links_identical"]:
        failures.append("served links differ from the offline oracle")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

"""Shared workloads for the figure benchmarks.

Two synthetic worlds stand in for the paper's corpora (see DESIGN.md,
"Substitutions"):

* ``cab`` — dense single-city taxi fleet (40 taxis, 1.5 days, ~860
  records/taxi at full inclusion) standing in for the 536-taxi SF trace;
* ``sm`` — sparse global check-in world (800 users, ~28 events each)
  standing in for the Twitter/Foursquare corpus.

Both are session-scoped: the worlds are generated once, every bench samples
observation pairs from them with the paper's protocol.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.data import sample_linkage_pair
from repro.data.synth import default_cab_world, default_sm_world

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory the figure series are written into."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def cab_world():
    """Dense taxi world (Cab stand-in)."""
    return default_cab_world(
        num_taxis=40, duration_days=1.5, sample_period_seconds=150, seed=7
    ).generate()


@pytest.fixture(scope="session")
def cab_pair(cab_world):
    """Default-parameter Cab linkage pair (ratio 0.5, inclusion 0.5)."""
    return sample_linkage_pair(
        cab_world, intersection_ratio=0.5, inclusion_probability=0.5, rng=7
    )


@pytest.fixture(scope="session")
def sm_world():
    """Sparse check-in world (SM stand-in)."""
    return default_sm_world(num_users=800, duration_days=10.0, seed=11).generate()


@pytest.fixture(scope="session")
def sm_pair(sm_world):
    """Default-parameter SM linkage pair."""
    return sample_linkage_pair(
        sm_world, intersection_ratio=0.5, inclusion_probability=0.5, rng=11
    )

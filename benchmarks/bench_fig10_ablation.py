"""Figure 10: ablation study — how SLIM's components earn their keep.

Five variants across (a) spatial level at 15-minute windows and (b) window
width at level 12:

* ``original``  — full SLIM (MNN + MFN alibi pass, IDF, normalisation);
* ``mnn``       — MFN alibi pass removed;
* ``all_pairs`` — Cartesian pairing instead of MNN;
* ``no_idf``    — IDF weighting removed;
* ``no_norm``   — BM25-style length normalisation removed.

Paper shape (Sec. 5.4):
* All variants agree at narrow windows (few bins per window);
* All_Pairs collapses at wide windows (over-counting);
* No-Normalisation falls behind as spatial detail grows;
* No-IDF falls behind at wide windows (uniqueness matters more);
* The MFN pass lowers the similarity of false-positive pairs even when F1
  barely moves (paper: FP mean 2227 -> 1501).
"""

import numpy as np

from repro.core.similarity import SimilarityConfig
from repro.core.slim import SlimConfig, SlimLinker
from repro.data import sample_linkage_pair
from repro.eval import format_table, run_slim, write_report

VARIANTS = {
    "original": {},
    "mnn": {"use_mfn": False},
    "all_pairs": {"pairing": "all_pairs", "use_mfn": False},
    "no_idf": {"use_idf": False},
    "no_norm": {"use_normalization": False},
}

LEVELS = (8, 12, 16, 20, 24)
WIDTHS = (15, 60, 180, 360, 720)


def _run(pair, variant_kwargs, level, width):
    config = SlimConfig(
        similarity=SimilarityConfig(
            spatial_level=level, window_width_minutes=width, **variant_kwargs
        )
    )
    return run_slim(pair, config)


def test_fig10a_spatial_level(benchmark, cab_world, results_dir):
    pair = sample_linkage_pair(
        cab_world.subset(cab_world.entities[:30]), 0.5, 0.5, rng=7
    )

    def sweep():
        rows = []
        for level in LEVELS:
            row = {"level": level}
            for name, kwargs in VARIANTS.items():
                row[name] = _run(pair, kwargs, level, 15).f1
            rows.append(row)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_report(
        format_table(rows, precision=3, title="Figure 10a: ablation F1 vs spatial level (15-min windows)"),
        results_dir / "fig10a_ablation_level.txt",
    )

    # Narrow windows: pairing variants behave alike (paper: "all three
    # blocking techniques used have similar F1-Score values").
    for row in rows:
        assert abs(row["original"] - row["mnn"]) < 0.25
    # Normalisation matters at high spatial detail.
    finest = rows[-1]
    assert finest["original"] >= finest["no_norm"] - 1e-9


def test_fig10b_window_width(benchmark, cab_world, results_dir):
    pair = sample_linkage_pair(
        cab_world.subset(cab_world.entities[:30]), 0.5, 0.5, rng=7
    )

    def sweep():
        rows = []
        for width in WIDTHS:
            row = {"window_min": width}
            for name, kwargs in VARIANTS.items():
                row[name] = _run(pair, kwargs, 12, width).f1
            rows.append(row)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_report(
        format_table(rows, precision=3, title="Figure 10b: ablation F1 vs window width (level 12)"),
        results_dir / "fig10b_ablation_width.txt",
    )

    # All_Pairs over-counts when wide windows hold many bins.
    widest = rows[-1]
    assert widest["all_pairs"] <= widest["original"] + 1e-9
    # IDF matters more at wide windows.
    assert widest["no_idf"] <= widest["original"] + 0.05


def test_fig10_mfn_lowers_false_positive_scores(benchmark, cab_world, results_dir):
    """The paper's MFN observation: with the optional MFN pass, the mean
    similarity of false-positive matched pairs drops (2227 -> 1501 in the
    paper's setting) even when F1 is unchanged.  Narrow windows (small
    runaway distance) make alibis detectable in the one-city world."""
    pair = sample_linkage_pair(
        cab_world.subset(cab_world.entities[:30]), 0.5, 0.5, rng=7
    )

    def measure():
        means = {}
        for name, kwargs in (("with_mfn", {}), ("without_mfn", {"use_mfn": False})):
            config = SlimConfig(
                similarity=SimilarityConfig(
                    spatial_level=12, window_width_minutes=5, **kwargs
                )
            )
            result = SlimLinker(config).link(pair.left, pair.right)
            false_weights = [
                edge.weight
                for edge in result.matched_edges
                if pair.ground_truth.get(edge.left) != edge.right
            ]
            means[name] = float(np.mean(false_weights)) if false_weights else 0.0
        return means

    means = benchmark.pedantic(measure, rounds=1, iterations=1)
    write_report(
        "MFN ablation (5-min windows, level 12):\n"
        f"mean false-positive matched score with MFN:    {means['with_mfn']:.2f}\n"
        f"mean false-positive matched score without MFN: {means['without_mfn']:.2f}",
        results_dir / "fig10_mfn_fp_scores.txt",
    )
    assert means["with_mfn"] <= means["without_mfn"] + 1e-9

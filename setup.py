"""Legacy setup shim.

The execution environment has no network access and no ``wheel`` package, so
PEP 660 editable installs fail.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``python setup.py develop``) work offline.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
